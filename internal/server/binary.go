// The length-prefixed binary frame protocol: the same operation vocabulary
// as the text protocol, in fixed-layout frames a server can decode — and a
// reply it can encode — without allocating, parsing decimals, or splitting
// strings. A connection opts in by making its first two bytes the magic
// sequence 0x80 0x01 (magic, version); 0x80 is not a byte any text command
// starts with, so the two protocols share a listener.
//
// All integers are little-endian.
//
// Request frame:
//
//	u32 length | u8 opcode | payload        (length counts opcode + payload)
//
//	opcode 1  PING    —                     -> OK
//	opcode 2  GET     u64 key               -> VALUE | NIL
//	opcode 3  PUT     u64 key, u64 value    -> OK
//	opcode 4  INSERT  u64 key, u64 value    -> TRUE | FALSE
//	opcode 5  DEL     u64 key               -> TRUE | FALSE
//	opcode 6  UPDATE  u64 key, u64 value    -> VALUE | NIL
//	opcode 7  SCAN    u64 lo, u64 hi, u32 max -> PAIRS
//	opcode 8  MGET    u32 n, n × u64 key    -> MULTI
//	opcode 9  STATS   —                     -> STATS
//	opcode 10 QUIT    —                     -> OK, connection closes
//	opcode 11 PROMOTE —                     -> OK  (replica → primary)
//
// Opcode 0x20 (PSYNC, defined in internal/repl) re-negotiates the
// connection into a replication channel: the server sends no ordinary
// reply frame and the replication primary owns the socket from there.
//
// Reply frame:
//
//	u32 length | u8 tag | payload           (length counts tag + payload)
//
//	tag 0 OK      —
//	tag 1 VALUE   u64 value
//	tag 2 NIL     —
//	tag 3 TRUE    —
//	tag 4 FALSE   —
//	tag 5 PAIRS   u32 n, n × (u64 key, u64 value)
//	tag 6 MULTI   u32 n, n × (u8 found, u64 value)
//	tag 7 ERR     utf-8 message
//	tag 8 STATS   u32 n, n × (u8 len, len × name byte, u64 value)
//
// Replies carry the reply-after-fence guarantee of the text protocol: a
// write's OK/TRUE/FALSE/VALUE frame is sent only after the commit fence
// covering it has landed.
package server

import (
	"bufio"
	"encoding/binary"
	"io"

	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/store"
)

const (
	binMagic   = 0x80
	binVersion = 0x01
	// maxBinFrame bounds a request frame's length field; anything larger is
	// a protocol error and closes the connection (a desynced or hostile
	// stream must not drive huge allocations).
	maxBinFrame = 1 << 20
)

// Request opcodes.
const (
	binOpPing    = 1
	binOpGet     = 2
	binOpPut     = 3
	binOpInsert  = 4
	binOpDel     = 5
	binOpUpdate  = 6
	binOpScan    = 7
	binOpMGet    = 8
	binOpStats   = 9
	binOpQuit    = 10
	binOpPromote = 11
)

// Reply tags.
const (
	binTagOK    = 0
	binTagValue = 1
	binTagNil   = 2
	binTagTrue  = 3
	binTagFalse = 4
	binTagPairs = 5
	binTagMulti = 6
	binTagErr   = 7
	binTagStats = 8
)

// handleBin is the binary-protocol read loop: fixed 5-byte header, payload
// into a reused buffer, dispatch. Framing errors close the connection (the
// stream offset is lost); semantic errors reply with an ERR frame and keep
// it open.
func (s *Server) handleBin(br *bufio.Reader, cs *connState) {
	var hdr [5]byte
	for {
		cs.armIdle()
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n < 1 || n > maxBinFrame {
			cs.replyBinErr("frame length out of range")
			return
		}
		need := int(n) - 1
		if cap(cs.binBuf) < need {
			cs.binBuf = make([]byte, need)
		}
		payload := cs.binBuf[:need]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		if !cs.dispatchBin(hdr[4], payload) {
			return
		}
	}
}

// replyBinErr enqueues an ERR frame.
func (cs *connState) replyBinErr(msg string) {
	sl := cs.take()
	sl.buf = appendBinErr(sl.buf[:0], msg)
	cs.finish(sl)
}

// dispatchBin executes one decoded binary request; false closes the
// connection. The write paths (PUT, INSERT, DEL, UPDATE) run without any
// allocation: the decoded operation goes to the pool by value and the slot
// renders the reply into its reused buffer.
func (cs *connState) dispatchBin(op byte, p []byte) bool {
	switch op {
	case binOpPing:
		sl := cs.take()
		sl.buf = appendBinHeader(sl.buf[:0], binTagOK, 0)
		cs.finish(sl)
	case binOpGet:
		if len(p) != 8 {
			cs.replyBinErr("GET wants an 8-byte payload")
			return true
		}
		cs.awaitWrites()
		v, found := cs.sess.Get(binary.LittleEndian.Uint64(p))
		sl := cs.take()
		sl.buf = appendBinValue(sl.buf[:0], v, found)
		cs.finish(sl)
	case binOpPut:
		if len(p) != 16 {
			cs.replyBinErr("PUT wants a 16-byte payload")
			return true
		}
		cs.submitWrite(store.Op{
			Kind:  shard.OpPut,
			Key:   binary.LittleEndian.Uint64(p),
			Value: binary.LittleEndian.Uint64(p[8:]),
		}, modeOK)
	case binOpInsert:
		if len(p) != 16 {
			cs.replyBinErr("INSERT wants a 16-byte payload")
			return true
		}
		cs.submitWrite(store.Op{
			Kind:  shard.OpInsert,
			Key:   binary.LittleEndian.Uint64(p),
			Value: binary.LittleEndian.Uint64(p[8:]),
		}, modeBool)
	case binOpDel:
		if len(p) != 8 {
			cs.replyBinErr("DEL wants an 8-byte payload")
			return true
		}
		cs.submitWrite(store.Op{Kind: shard.OpDelete, Key: binary.LittleEndian.Uint64(p)}, modeBool)
	case binOpUpdate:
		if len(p) != 16 {
			cs.replyBinErr("UPDATE wants a 16-byte payload")
			return true
		}
		cs.submitWrite(store.Op{
			Kind:  shard.OpUpdate,
			Key:   binary.LittleEndian.Uint64(p),
			Value: binary.LittleEndian.Uint64(p[8:]),
		}, modeValue)
	case binOpScan:
		cs.execScanBin(p)
	case binOpMGet:
		cs.execMGetBin(p)
	case binOpStats:
		cs.awaitWrites()
		stats := cs.statRows()
		n := 4
		for _, s := range stats {
			n += 1 + len(s.name) + 8
		}
		sl := cs.take()
		buf := appendBinHeader(sl.buf[:0], binTagStats, n)
		buf = appendBinU32(buf, uint32(len(stats)))
		for _, s := range stats {
			buf = append(buf, byte(len(s.name)))
			buf = append(buf, s.name...)
			buf = appendBinU64(buf, s.v)
		}
		sl.buf = buf
		cs.finish(sl)
	case binOpPromote:
		cs.awaitWrites()
		cs.srv.Promote()
		sl := cs.take()
		sl.buf = appendBinHeader(sl.buf[:0], binTagOK, 0)
		cs.finish(sl)
	case repl.OpPSync:
		if cs.srv.prim == nil || cs.srv.readOnly.Load() {
			cs.replyBinErr("PSYNC: not a primary")
			return true
		}
		// Copy the payload out of the reused frame buffer and leave the
		// request loop; handle() drains the reply stream and hands the
		// connection to the primary.
		cs.replPSync = append([]byte(nil), p...)
		return false
	case binOpQuit:
		sl := cs.take()
		sl.buf = appendBinHeader(sl.buf[:0], binTagOK, 0)
		cs.finish(sl)
		return false
	default:
		cs.replyBinErr("unknown opcode")
	}
	return true
}

func (cs *connState) execScanBin(p []byte) {
	if len(p) != 20 {
		cs.replyBinErr("SCAN wants a 20-byte payload")
		return
	}
	lo := binary.LittleEndian.Uint64(p)
	hi := binary.LittleEndian.Uint64(p[8:])
	max := int(binary.LittleEndian.Uint32(p[16:]))
	if max > cs.srv.cfg.MaxScan || max < 0 {
		max = cs.srv.cfg.MaxScan
	}
	items, err := cs.collectScan(lo, hi, max)
	if err != nil {
		cs.replyBinErr(err.Error())
		return
	}
	sl := cs.take()
	buf := appendBinHeader(sl.buf[:0], binTagPairs, 4+16*len(items))
	buf = appendBinU32(buf, uint32(len(items)))
	for _, it := range items {
		buf = appendBinU64(buf, it.k)
		buf = appendBinU64(buf, it.v)
	}
	sl.buf = buf
	cs.finish(sl)
}

func (cs *connState) execMGetBin(p []byte) {
	if len(p) < 4 {
		cs.replyBinErr("MGET wants a count-prefixed payload")
		return
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n < 0 || len(p) != 4+8*n {
		cs.replyBinErr("MGET payload length mismatch")
		return
	}
	keys := cs.keys[:0]
	for i := 0; i < n; i++ {
		keys = append(keys, binary.LittleEndian.Uint64(p[4+8*i:]))
	}
	cs.keys = keys
	cs.awaitWrites()
	cs.res = cs.sess.MultiGet(keys, cs.res)
	sl := cs.take()
	buf := appendBinHeader(sl.buf[:0], binTagMulti, 4+9*n)
	buf = appendBinU32(buf, uint32(n))
	for _, r := range cs.res {
		if r.OK {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendBinU64(buf, r.Value)
	}
	sl.buf = buf
	cs.finish(sl)
}

// appendBinHeader writes a reply frame header for a payload of payloadLen
// bytes (the length field counts the tag byte too).
func appendBinHeader(buf []byte, tag byte, payloadLen int) []byte {
	var h [5]byte
	binary.LittleEndian.PutUint32(h[:4], uint32(payloadLen+1))
	h[4] = tag
	return append(buf, h[:]...)
}

func appendBinU32(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(buf, b[:]...)
}

func appendBinU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

func appendBinValue(buf []byte, v uint64, ok bool) []byte {
	if !ok {
		return appendBinHeader(buf, binTagNil, 0)
	}
	buf = appendBinHeader(buf, binTagValue, 8)
	return appendBinU64(buf, v)
}

func appendBinErr(buf []byte, msg string) []byte {
	buf = appendBinHeader(buf, binTagErr, len(msg))
	return append(buf, msg...)
}

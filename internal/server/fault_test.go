package server

// End-to-end degraded-mode serving: a disk fault under the store must
// surface to network clients as a typed ERR DEGRADED refusal — never a
// silent OK — while reads, STATS, and existing connections keep working.
// Plus the connection-hygiene satellites: server idle/write deadlines and
// client-side timeouts.

import (
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/pmem/vfs"
	"repro/internal/store"
)

// startFaultServer is startServer over a durable store whose filesystem
// runs the given errfs schedule.
func startFaultServer(t *testing.T, schedule string, scfg Config) (string, *Server) {
	t.Helper()
	if scfg.MaxConns == 0 {
		scfg.MaxConns = 8
	}
	efs, err := vfs.NewErrFS(vfs.OS, schedule, 1)
	if err != nil {
		t.Fatalf("NewErrFS(%q): %v", schedule, err)
	}
	st, err := store.Open(store.Config{
		Kind: core.KindSkiplist, Profile: pmem.ProfileZero,
		SizeHint: 1 << 12, MaxSessions: scfg.MaxConns + 8,
		Dir: t.TempDir(), SyncFence: true, FS: efs,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := "unix:" + filepath.Join(t.TempDir(), "nv.sock")
	srv := New(st, scfg)
	ln, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
		st.Close()
	})
	return addr, srv
}

func dialVariant(t *testing.T, addr string, bin bool) *Client {
	t.Helper()
	var cl *Client
	var err error
	if bin {
		cl, err = DialBin(addr)
	} else {
		cl, err = Dial(addr)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestServerDegradedOnDiskFault drives writes over the wire until the
// injected fsync failure bites, on both protocols.
func TestServerDegradedOnDiskFault(t *testing.T) {
	for _, bin := range []bool{false, true} {
		name := "text"
		if bin {
			name = "binary"
		}
		t.Run(name, func(t *testing.T) {
			addr, srv := startFaultServer(t, "sync~wal@8=eio", Config{})
			cl := dialVariant(t, addr, bin)

			var acked uint64
			var derr error
			for k := uint64(1); k <= 500; k++ {
				if err := cl.Put(k, k*10); err != nil {
					derr = err
					break
				}
				acked = k
			}
			if derr == nil {
				t.Fatal("disk fault never surfaced: 500 puts all acked")
			}
			if !errors.Is(derr, ErrDegraded) {
				t.Fatalf("refusal is %v, want ErrDegraded", derr)
			}
			if acked == 0 {
				t.Fatal("no put acked before the fault")
			}
			if srv.DegradedErr() == nil {
				t.Fatal("server does not report degradation")
			}

			// Same connection keeps serving reads...
			if v, ok, err := cl.Get(1); err != nil || !ok || v != 10 {
				t.Fatalf("read on degraded server: %d %v %v", v, ok, err)
			}
			// ...refuses further writes with the same typed error...
			if err := cl.Put(9999, 1); !errors.Is(err, ErrDegraded) {
				t.Fatalf("write after degradation: %v, want ErrDegraded", err)
			}
			// ...and exposes the state in STATS (text protocol only).
			if !bin {
				stats, err := cl.Stats()
				if err != nil {
					t.Fatalf("stats: %v", err)
				}
				if stats["degraded"] != 1 {
					t.Fatalf("stats degraded = %d, want 1", stats["degraded"])
				}
			}
			// A fresh connection is refused writes too: degradation is a
			// store condition, not per-connection state.
			cl2 := dialVariant(t, addr, bin)
			if err := cl2.Put(4242, 1); !errors.Is(err, ErrDegraded) {
				t.Fatalf("write on fresh conn: %v, want ErrDegraded", err)
			}
		})
	}
}

// TestServerIdleTimeout: a connection that stops sending requests is
// closed once the idle clock runs out, and an active one is not.
func TestServerIdleTimeout(t *testing.T) {
	addr, _, _ := startServer(t, core.KindSkiplist, 0, Config{IdleTimeout: 100 * time.Millisecond})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Activity re-arms the clock: several pings spaced under the limit.
	for i := 0; i < 3; i++ {
		if err := cl.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
		time.Sleep(40 * time.Millisecond)
	}
	// Go idle past the limit: the server hangs up.
	time.Sleep(300 * time.Millisecond)
	if err := cl.Ping(); err == nil {
		t.Fatal("ping succeeded on a connection the server should have closed")
	}
}

// TestClientTimeout: a stalled server (accepts, reads, never replies)
// must not hang the client — SetTimeout bounds the read and surfaces the
// typed ErrTimeout.
func TestClientTimeout(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "stall.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()

	cl, err := DialTimeout("unix:"+sock, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	err = cl.Ping()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping against stalled server: %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

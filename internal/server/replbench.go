package server

// Replication benchmark harnesses for nvbench's JSON baseline: the
// read-scaling rows (srv-repl-rN) and the WAIT-quorum write-latency row
// (srv-wait1). Self-contained like Bench/BenchFile/BenchBin — each call
// builds its own primary, replicas, sockets and load.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/store"
)

// replFleet is one primary plus n replica servers on Unix sockets.
type replFleet struct {
	dir      string
	primary  string   // primary address
	replicas []string // replica addresses
	close    []func()
}

func (f *replFleet) Close() {
	for i := len(f.close) - 1; i >= 0; i-- {
		f.close[i]()
	}
	os.RemoveAll(f.dir)
}

// startReplFleet serves a prefilled primary and n caught-up replicas.
func startReplFleet(n int, keyRange uint64, scfg Config) (*replFleet, error) {
	const shards, conns = 4, 4
	dir, err := os.MkdirTemp("", "nvrepl-bench")
	if err != nil {
		return nil, err
	}
	f := &replFleet{dir: dir}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()

	serve := func(st store.Store, sock string, cfg Config, replicaOf string) (string, error) {
		srv := New(st, cfg)
		if replicaOf != "" {
			if err := srv.StartReplica(replicaOf, ""); err != nil {
				srv.Close()
				return "", err
			}
		}
		addr := "unix:" + filepath.Join(dir, sock)
		ln, err := Listen(addr)
		if err != nil {
			srv.Close()
			return "", err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		f.close = append(f.close, func() { srv.Close(); <-done })
		return addr, nil
	}
	open := func() (store.Store, error) {
		return store.Open(store.Config{
			Kind: core.KindHash, Policy: persist.NVTraverse{}, Profile: pmem.ProfileZero,
			Shards: shards, SizeHint: int(keyRange), MaxSessions: 3*conns + shards + 8,
		})
	}

	pst, err := open()
	if err != nil {
		return nil, err
	}
	f.close = append(f.close, func() { pst.Close() })
	scfg.MaxConns = 3*conns + n + 2 // loads + replication channels
	f.primary, err = serve(pst, "p.sock", scfg, "")
	if err != nil {
		return nil, err
	}

	for i := 0; i < n; i++ {
		rst, err := open()
		if err != nil {
			return nil, err
		}
		f.close = append(f.close, func() { rst.Close() })
		addr, err := serve(rst, fmt.Sprintf("r%d.sock", i), Config{MaxConns: 3*conns + 2}, f.primary)
		if err != nil {
			return nil, err
		}
		f.replicas = append(f.replicas, addr)
	}

	// Attach barrier BEFORE the prefill: under a WAIT quorum a write on a
	// replica-less primary would gate until the timeout, so the fleet must
	// be feeding before the first insert.
	cl, err := Dial(f.primary)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := cl.Stats()
		if err == nil && st["repl_replicas"] >= uint64(n) {
			break
		}
		if time.Now().After(deadline) {
			cl.Close()
			return nil, fmt.Errorf("primary never saw %d replicas (stats %v, err %v)", n, st, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := prefillWire(LoadConfig{Addr: f.primary, Conns: conns, Range: keyRange}); err != nil {
		cl.Close()
		return nil, err
	}

	// Catch-up barrier: a sentinel write on the primary, visible on every
	// replica (the prefill stream behind it came through).
	sentinel := keyRange + 7
	err = cl.Put(sentinel, 1)
	cl.Close()
	if err != nil {
		return nil, err
	}
	for _, addr := range f.replicas {
		rcl, err := Dial(addr)
		if err != nil {
			return nil, err
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			if _, found, err := rcl.Get(sentinel); err == nil && found {
				break
			}
			if time.Now().After(deadline) {
				rcl.Close()
				return nil, fmt.Errorf("replica %s never caught up", addr)
			}
			time.Sleep(2 * time.Millisecond)
		}
		rcl.Close()
	}
	ok = true
	return f, nil
}

// BenchRepl returns the builder for the srv-repl-rN read-scaling row: a
// prefilled primary, n caught-up replicas, and a read-only (YCSB-C) load
// spread over the replicas. A capacity pass on one replica sets a
// per-replica offered rate well inside the stable region (the fleet
// shares the machine with the load generators, so a closed-loop stampede
// on every replica at once would measure contention, not scaling); each
// replica then serves that rate concurrently, so achieved throughput
// grows with the replica count while per-read latency stays flat.
func BenchRepl(n int) func(time.Duration) (bench.Result, error) {
	return func(dur time.Duration) (bench.Result, error) {
		const conns = 2
		var keyRange uint64 = 1 << 15
		f, err := startReplFleet(n, keyRange, Config{})
		if err != nil {
			return bench.Result{}, err
		}
		defer f.Close()

		// Per-replica capacity, measured once on the first replica.
		cap0, err := RunLoad(LoadConfig{
			Addr: f.replicas[0], Conns: conns, Pipeline: 16,
			Duration: bench.EffectiveDuration(dur),
			Workload: "C", Range: keyRange,
		})
		if err != nil {
			return bench.Result{}, err
		}
		if cap0.Errors > 0 {
			return bench.Result{}, fmt.Errorf("capacity pass: %d protocol errors", cap0.Errors)
		}
		rate := cap0.OpsPerSec * 0.18
		if rate < 1000 {
			rate = 1000
		}
		budget := uint64(rate * bench.EffectiveDuration(dur).Seconds())
		if budget < 16*conns {
			budget = 16 * conns
		}

		// Open-loop read load on every replica at once, one generator per
		// replica at the same offered rate.
		type outcome struct {
			res LoadResult
			err error
		}
		outs := make(chan outcome, n)
		for _, addr := range f.replicas {
			go func(addr string) {
				res, err := RunLoad(LoadConfig{
					Addr: addr, Conns: conns, Pipeline: 16,
					Ops: budget, Workload: "C", Range: keyRange,
					Rate: rate, Poisson: true,
				})
				outs <- outcome{res, err}
			}(addr)
		}
		var total bench.Result
		total.Config = bench.Config{
			Kind: core.KindHash, Policy: "nvtraverse", Profile: pmem.ProfileZero,
			Threads: n * conns, Range: keyRange, Workload: "C", Shards: 4,
		}
		for i := 0; i < n; i++ {
			o := <-outs
			if o.err != nil {
				return bench.Result{}, o.err
			}
			if o.res.Errors > 0 {
				return bench.Result{}, fmt.Errorf("replica read pass: %d protocol errors", o.res.Errors)
			}
			total.Ops += o.res.Ops
			total.Mops += o.res.OpsPerSec / 1e6
			total.Offered += o.res.Offered
			if total.Lat == nil {
				total.Lat = o.res.Lat
			}
			if o.res.Elapsed > total.Elapsed {
				total.Elapsed = o.res.Elapsed
			}
		}
		return total, nil
	}
}

// BenchWait1 is the WAIT-quorum write row: a primary with WaitReplicas=1
// and one attached replica, YCSB-A load on the primary. Every
// acknowledged write waited for the replica's confirmation, so the row's
// percentiles price the replication round trip into the write path (the
// delta against srv-unix4 is what WAIT 1 costs). Closed-loop capacity
// pass first, then the open-loop latency pass at 70% of it, exactly like
// Bench.
func BenchWait1(dur time.Duration) (bench.Result, error) {
	const conns = 4
	var keyRange uint64 = 1 << 15
	f, err := startReplFleet(1, keyRange, Config{
		WaitReplicas: 1, WaitTimeout: 30 * time.Second,
	})
	if err != nil {
		return bench.Result{}, err
	}
	defer f.Close()

	res, err := RunLoad(LoadConfig{
		Addr: f.primary, Conns: conns, Pipeline: 16,
		Duration: bench.EffectiveDuration(dur),
		Workload: "A", Range: keyRange,
	})
	if err != nil {
		return bench.Result{}, err
	}
	if res.Errors > 0 {
		return bench.Result{}, fmt.Errorf("WAIT capacity pass: %d protocol errors", res.Errors)
	}
	out := bench.Result{
		Config: bench.Config{
			Kind: core.KindHash, Policy: "nvtraverse", Profile: pmem.ProfileZero,
			Threads: conns, Range: keyRange, Workload: "A", Shards: 4,
		},
		Ops:     res.Ops,
		Mops:    res.OpsPerSec / 1e6,
		Elapsed: res.Elapsed,
		Lat:     res.Lat,
	}
	rate := res.OpsPerSec * openLoopFraction
	if rate < 1000 {
		rate = 1000
	}
	budget := uint64(rate * bench.EffectiveDuration(dur).Seconds())
	if budget < 16*conns {
		budget = 16 * conns
	}
	open, err := RunLoad(LoadConfig{
		Addr: f.primary, Conns: conns, Pipeline: 16,
		Ops: budget, Workload: "A", Range: keyRange,
		Rate: rate, Poisson: true,
	})
	if err != nil {
		return bench.Result{}, err
	}
	if open.Errors > 0 {
		return bench.Result{}, fmt.Errorf("WAIT open-loop pass: %d protocol errors", open.Errors)
	}
	out.Lat = open.Lat
	out.Offered = open.Offered
	return out, nil
}

package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
)

// Client is a pipelining protocol client: Send* methods queue commands in
// the write buffer, Flush pushes them to the wire, and the Read* methods
// consume replies in send order. The synchronous helpers (Put, Get, ...)
// wrap a send+flush+read pair. A Client is not safe for concurrent use.
type Client struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// Dial connects to a server address ("unix:/path", "tcp:host:port", or
// bare "host:port").
func Dial(addr string) (*Client, error) {
	network, address := SplitAddr(addr)
	c, err := net.Dial(network, address)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// Flush pushes queued commands to the wire.
func (cl *Client) Flush() error { return cl.bw.Flush() }

// Send queues one raw command line (no terminator).
func (cl *Client) Send(line string) error {
	if _, err := cl.bw.WriteString(line); err != nil {
		return err
	}
	_, err := cl.bw.WriteString("\r\n")
	return err
}

// SendGet, SendPut, SendInsert, SendDel, SendUpdate queue point commands
// without allocating the command string.
func (cl *Client) SendGet(k uint64) error    { return cl.send1("GET", k) }
func (cl *Client) SendDel(k uint64) error    { return cl.send1("DEL", k) }
func (cl *Client) SendPut(k, v uint64) error { return cl.send2("PUT", k, v) }
func (cl *Client) SendInsert(k, v uint64) error {
	return cl.send2("INSERT", k, v)
}
func (cl *Client) SendUpdate(k, v uint64) error {
	return cl.send2("UPDATE", k, v)
}

// SendScan queues a SCAN with a result cap.
func (cl *Client) SendScan(lo, hi uint64, max int) error {
	var buf [96]byte
	b := append(buf[:0], "SCAN "...)
	b = strconv.AppendUint(b, lo, 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, hi, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(max), 10)
	b = append(b, '\r', '\n')
	_, err := cl.bw.Write(b)
	return err
}

func (cl *Client) send1(cmd string, k uint64) error {
	var buf [64]byte
	b := append(buf[:0], cmd...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, k, 10)
	b = append(b, '\r', '\n')
	_, err := cl.bw.Write(b)
	return err
}

func (cl *Client) send2(cmd string, k, v uint64) error {
	var buf [96]byte
	b := append(buf[:0], cmd...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, k, 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	b = append(b, '\r', '\n')
	_, err := cl.bw.Write(b)
	return err
}

// Reply is one parsed server reply. Exactly one interpretation applies per
// command (see the protocol table in the package comment).
type Reply struct {
	// Status holds "+" replies ("OK", "PONG").
	Status string
	// Value and Found hold "$" replies ($-1 sets Found false).
	Value uint64
	Found bool
	// Int holds ":" replies.
	Int int64
	// Array holds "*" reply payload lines, verbatim without terminators.
	Array []string
	// Err holds "-ERR" replies.
	Err string
}

// IsErr reports whether the reply is a protocol-level error.
func (r Reply) IsErr() bool { return r.Err != "" }

// ReadReply consumes one reply (flushing queued commands first is the
// caller's job; the sync helpers do it).
func (cl *Client) ReadReply() (Reply, error) {
	line, err := cl.readLine()
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, errors.New("server: empty reply line")
	}
	switch line[0] {
	case '+':
		return Reply{Status: line[1:]}, nil
	case '-':
		return Reply{Err: strings.TrimPrefix(line[1:], "ERR ")}, nil
	case ':':
		n, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("server: bad integer reply %q", line)
		}
		return Reply{Int: n}, nil
	case '$':
		if line == "$-1" {
			return Reply{}, nil
		}
		v, err := strconv.ParseUint(line[1:], 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("server: bad value reply %q", line)
		}
		return Reply{Value: v, Found: true}, nil
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil || n < 0 {
			return Reply{}, fmt.Errorf("server: bad array reply %q", line)
		}
		arr := make([]string, n)
		for i := 0; i < n; i++ {
			if arr[i], err = cl.readLine(); err != nil {
				return Reply{}, err
			}
		}
		return Reply{Array: arr}, nil
	}
	return Reply{}, fmt.Errorf("server: unknown reply %q", line)
}

func (cl *Client) readLine() (string, error) {
	line, err := cl.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// roundTrip flushes and reads one reply, folding protocol errors into err.
func (cl *Client) roundTrip() (Reply, error) {
	if err := cl.Flush(); err != nil {
		return Reply{}, err
	}
	r, err := cl.ReadReply()
	if err != nil {
		return Reply{}, err
	}
	if r.IsErr() {
		return r, errors.New("server: " + r.Err)
	}
	return r, nil
}

// Ping round-trips a PING.
func (cl *Client) Ping() error {
	if err := cl.Send("PING"); err != nil {
		return err
	}
	_, err := cl.roundTrip()
	return err
}

// Put upserts key to value.
func (cl *Client) Put(k, v uint64) error {
	if err := cl.SendPut(k, v); err != nil {
		return err
	}
	_, err := cl.roundTrip()
	return err
}

// Get looks up a key.
func (cl *Client) Get(k uint64) (uint64, bool, error) {
	if err := cl.SendGet(k); err != nil {
		return 0, false, err
	}
	r, err := cl.roundTrip()
	return r.Value, r.Found, err
}

// Insert adds key with value; false if present.
func (cl *Client) Insert(k, v uint64) (bool, error) {
	if err := cl.SendInsert(k, v); err != nil {
		return false, err
	}
	r, err := cl.roundTrip()
	return r.Int == 1, err
}

// Del removes a key; false if absent.
func (cl *Client) Del(k uint64) (bool, error) {
	if err := cl.SendDel(k); err != nil {
		return false, err
	}
	r, err := cl.roundTrip()
	return r.Int == 1, err
}

// Update sets key to v if present, returning the new value.
func (cl *Client) Update(k, v uint64) (uint64, bool, error) {
	if err := cl.SendUpdate(k, v); err != nil {
		return 0, false, err
	}
	r, err := cl.roundTrip()
	return r.Value, r.Found, err
}

// Scan returns up to max pairs of [lo, hi] in key order.
func (cl *Client) Scan(lo, hi uint64, max int) (keys, vals []uint64, err error) {
	if err := cl.SendScan(lo, hi, max); err != nil {
		return nil, nil, err
	}
	r, err := cl.roundTrip()
	if err != nil {
		return nil, nil, err
	}
	for _, line := range r.Array {
		k, v, ok := strings.Cut(line, " ")
		if !ok {
			return nil, nil, fmt.Errorf("server: bad scan entry %q", line)
		}
		ku, err1 := strconv.ParseUint(k, 10, 64)
		vu, err2 := strconv.ParseUint(v, 10, 64)
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("server: bad scan entry %q", line)
		}
		keys = append(keys, ku)
		vals = append(vals, vu)
	}
	return keys, vals, nil
}

// Stats fetches the server's counters.
func (cl *Client) Stats() (map[string]uint64, error) {
	if err := cl.Send("STATS"); err != nil {
		return nil, err
	}
	r, err := cl.roundTrip()
	if err != nil {
		return nil, err
	}
	m := make(map[string]uint64, len(r.Array))
	for _, line := range r.Array {
		name, v, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("server: bad stats entry %q", line)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("server: bad stats entry %q", line)
		}
		m[name] = n
	}
	return m, nil
}

// Quit sends QUIT and closes.
func (cl *Client) Quit() error {
	if err := cl.Send("QUIT"); err != nil {
		return err
	}
	if _, err := cl.roundTrip(); err != nil {
		return err
	}
	return cl.Close()
}

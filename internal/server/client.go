package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"
)

// Errors the client classifies out of failed round trips (errors.Is).
var (
	// ErrDegraded reports a write the server refused because its durable
	// backend latched a disk failure (the "-ERR DEGRADED ..." reply): the
	// store is read-only until restarted and recovered, and the write was
	// NOT made durable.
	ErrDegraded = errors.New("server: store degraded")
	// ErrTimeout reports a dial, flush, or reply read that exceeded the
	// client's timeout (WithDialTimeout / SetTimeout).
	ErrTimeout = errors.New("server: timeout")
	// ErrWait reports a write the server acknowledged as NOT yet
	// replicated (the "-ERR WAIT ..." reply): the replica quorum did not
	// confirm the write's fence group in time. Unlike ErrDegraded the
	// write IS durable on the primary; retrying after the replicas catch
	// up succeeds.
	ErrWait = errors.New("server: replica quorum not reached")
	// ErrReplica reports a write sent to a read-only replica (the
	// "-ERR REPLICA ..." reply): writes go to the primary.
	ErrReplica = errors.New("server: replica is read-only")
)

// mapErr folds transport deadline expiry into ErrTimeout; other errors
// pass through untouched.
func mapErr(err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// Client is a pipelining protocol client: Send* methods queue commands in
// the write buffer, Flush pushes them to the wire, and the Read* methods
// consume replies in send order. The synchronous helpers (Put, Get, ...)
// wrap a send+flush+read pair. A Client is not safe for concurrent use
// (but its read and write sides may be driven by one goroutine each —
// the open-loop load generator does).
//
// A Client speaks either the text protocol (the default) or the binary
// frame protocol (WithBinaryProto / NewClientBin); both expose the same
// surface and parse into the same Reply struct.
type Client struct {
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	bin     bool
	timeout time.Duration
	// reads, when non-empty, carries the replica connections the
	// synchronous read helpers (Get, Scan, Stats-free reads) rotate
	// through (WithReadFrom); writes always use the primary connection.
	reads    []*Client
	nextRead int
}

// ReadFrom selects where a Client's synchronous read helpers go when
// replica addresses are configured (WithReadFrom + WithReplicaAddrs).
type ReadFrom uint8

const (
	// ReadPrimary sends every operation to the dialed address (the
	// default): reads observe the client's own writes.
	ReadPrimary ReadFrom = iota
	// ReadReplica rotates synchronous reads across the replica
	// addresses — read scaling with the replication stream's staleness
	// contract: a read may lag the primary by the replica's current lag,
	// and read-your-writes holds only per replica connection, not across
	// the fleet.
	ReadReplica
	// ReadNearest routes synchronous reads to the one candidate (the
	// primary or any replica) with the lowest dial-time ping round trip.
	ReadNearest
)

// DialOption configures Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	bin      bool
	timeout  time.Duration
	readFrom ReadFrom
	replicas []string
}

// WithBinaryProto negotiates the length-prefixed binary frame protocol
// instead of the text protocol.
func WithBinaryProto() DialOption {
	return func(c *dialConfig) { c.bin = true }
}

// WithDialTimeout bounds the dial itself and arms the client with the
// same per-round-trip timeout (see SetTimeout). A dial that exceeds d
// fails with an error matching ErrTimeout.
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithReadFrom selects the read routing policy. ReadReplica and
// ReadNearest need the replica fleet from WithReplicaAddrs; with no
// replicas configured every policy degenerates to ReadPrimary.
func WithReadFrom(rf ReadFrom) DialOption {
	return func(c *dialConfig) { c.readFrom = rf }
}

// WithReplicaAddrs names the replica fleet for WithReadFrom.
func WithReplicaAddrs(addrs ...string) DialOption {
	return func(c *dialConfig) { c.replicas = append(c.replicas, addrs...) }
}

// Dial connects to a server address ("unix:/path", "tcp:host:port", or
// bare "host:port"). With no options it is the plain text-protocol
// connection it always was; options select the binary protocol, a
// timeout, and read routing across replicas.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	var cfg dialConfig
	for _, o := range opts {
		o(&cfg)
	}
	cl, err := dialOne(addr, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.readFrom == ReadPrimary || len(cfg.replicas) == 0 {
		return cl, nil
	}
	var reads []*Client
	for _, raddr := range cfg.replicas {
		rc, err := dialOne(raddr, cfg)
		if err != nil {
			cl.Close()
			for _, c := range reads {
				c.Close()
			}
			return nil, err
		}
		reads = append(reads, rc)
	}
	if cfg.readFrom == ReadNearest {
		// One ping round trip per candidate (the primary included); the
		// winner takes all synchronous reads.
		best, bestRTT := -1, time.Duration(0)
		for i, c := range append([]*Client{cl}, reads...) {
			start := time.Now()
			if c.Ping() != nil {
				continue
			}
			if rtt := time.Since(start); best < 0 || rtt < bestRTT {
				best, bestRTT = i, rtt
			}
		}
		winner := cl
		if best > 0 {
			winner = reads[best-1]
		}
		for _, c := range reads {
			if c != winner {
				c.Close()
			}
		}
		if winner == cl {
			return cl, nil
		}
		reads = []*Client{winner}
	}
	cl.reads = reads
	return cl, nil
}

func dialOne(addr string, cfg dialConfig) (*Client, error) {
	network, address := SplitAddr(addr)
	var c net.Conn
	var err error
	if cfg.timeout > 0 {
		c, err = net.DialTimeout(network, address, cfg.timeout)
	} else {
		c, err = net.Dial(network, address)
	}
	if err != nil {
		return nil, mapErr(err)
	}
	var cl *Client
	if cfg.bin {
		cl = NewClientBin(c)
	} else {
		cl = NewClient(c)
	}
	cl.SetTimeout(cfg.timeout)
	return cl, nil
}

// readClient picks the connection for one synchronous read.
func (cl *Client) readClient() *Client {
	if len(cl.reads) == 0 {
		return cl
	}
	rc := cl.reads[cl.nextRead%len(cl.reads)]
	cl.nextRead++
	return rc
}

// DialBin connects like Dial and negotiates the binary frame protocol.
//
// Deprecated: use Dial(addr, WithBinaryProto()).
func DialBin(addr string) (*Client, error) {
	return Dial(addr, WithBinaryProto())
}

// DialTimeout connects like Dial with a dial and round-trip timeout.
//
// Deprecated: use Dial(addr, WithDialTimeout(d)).
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	return Dial(addr, WithDialTimeout(d))
}

// DialBinTimeout is DialTimeout negotiating the binary frame protocol.
//
// Deprecated: use Dial(addr, WithBinaryProto(), WithDialTimeout(d)).
func DialBinTimeout(addr string, d time.Duration) (*Client, error) {
	return Dial(addr, WithBinaryProto(), WithDialTimeout(d))
}

// SetTimeout bounds every subsequent Flush and reply read: an operation
// that stalls longer than d fails with an error matching ErrTimeout and
// the connection should be abandoned (the stream position is unknown).
// Zero restores no limit.
func (cl *Client) SetTimeout(d time.Duration) { cl.timeout = d }

func (cl *Client) armRead() {
	if cl.timeout > 0 {
		cl.c.SetReadDeadline(time.Now().Add(cl.timeout))
	}
}

func (cl *Client) armWrite() {
	if cl.timeout > 0 {
		cl.c.SetWriteDeadline(time.Now().Add(cl.timeout))
	}
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
}

// NewClientBin wraps an established connection and queues the binary magic
// (it reaches the server with the first Flush).
func NewClientBin(c net.Conn) *Client {
	cl := NewClient(c)
	cl.bin = true
	cl.bw.Write([]byte{binMagic, binVersion})
	return cl
}

// Close closes the connection (and any replica read connections).
func (cl *Client) Close() error {
	for _, rc := range cl.reads {
		rc.Close()
	}
	return cl.c.Close()
}

// Flush pushes queued commands to the wire.
func (cl *Client) Flush() error {
	cl.armWrite()
	return mapErr(cl.bw.Flush())
}

// Send queues one raw command line (no terminator).
func (cl *Client) Send(line string) error {
	if _, err := cl.bw.WriteString(line); err != nil {
		return err
	}
	_, err := cl.bw.WriteString("\r\n")
	return err
}

// SendGet, SendPut, SendInsert, SendDel, SendUpdate queue point commands
// without allocating the command string, in whichever protocol the client
// negotiated.
func (cl *Client) SendGet(k uint64) error {
	if cl.bin {
		return cl.sendBin1(binOpGet, k)
	}
	return cl.send1("GET", k)
}
func (cl *Client) SendDel(k uint64) error {
	if cl.bin {
		return cl.sendBin1(binOpDel, k)
	}
	return cl.send1("DEL", k)
}
func (cl *Client) SendPut(k, v uint64) error {
	if cl.bin {
		return cl.sendBin2(binOpPut, k, v)
	}
	return cl.send2("PUT", k, v)
}
func (cl *Client) SendInsert(k, v uint64) error {
	if cl.bin {
		return cl.sendBin2(binOpInsert, k, v)
	}
	return cl.send2("INSERT", k, v)
}
func (cl *Client) SendUpdate(k, v uint64) error {
	if cl.bin {
		return cl.sendBin2(binOpUpdate, k, v)
	}
	return cl.send2("UPDATE", k, v)
}

// SendScan queues a SCAN with a result cap.
func (cl *Client) SendScan(lo, hi uint64, max int) error {
	if cl.bin {
		var b [25]byte
		binary.LittleEndian.PutUint32(b[:4], 21)
		b[4] = binOpScan
		binary.LittleEndian.PutUint64(b[5:], lo)
		binary.LittleEndian.PutUint64(b[13:], hi)
		binary.LittleEndian.PutUint32(b[21:], uint32(max))
		_, err := cl.bw.Write(b[:])
		return err
	}
	var buf [96]byte
	b := append(buf[:0], "SCAN "...)
	b = strconv.AppendUint(b, lo, 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, hi, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(max), 10)
	b = append(b, '\r', '\n')
	_, err := cl.bw.Write(b)
	return err
}

// SendMGet queues an MGET for a set of keys.
func (cl *Client) SendMGet(keys []uint64) error {
	if cl.bin {
		var hdr [9]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(5+8*len(keys)))
		hdr[4] = binOpMGet
		binary.LittleEndian.PutUint32(hdr[5:], uint32(len(keys)))
		if _, err := cl.bw.Write(hdr[:]); err != nil {
			return err
		}
		var kb [8]byte
		for _, k := range keys {
			binary.LittleEndian.PutUint64(kb[:], k)
			if _, err := cl.bw.Write(kb[:]); err != nil {
				return err
			}
		}
		return nil
	}
	var buf [96]byte
	b := append(buf[:0], "MGET"...)
	for _, k := range keys {
		b = append(b, ' ')
		b = strconv.AppendUint(b, k, 10)
	}
	b = append(b, '\r', '\n')
	_, err := cl.bw.Write(b)
	return err
}

// sendBin0, sendBin1, sendBin2 queue fixed-shape binary request frames.
func (cl *Client) sendBin0(op byte) error {
	var b [5]byte
	binary.LittleEndian.PutUint32(b[:4], 1)
	b[4] = op
	_, err := cl.bw.Write(b[:])
	return err
}

func (cl *Client) sendBin1(op byte, k uint64) error {
	var b [13]byte
	binary.LittleEndian.PutUint32(b[:4], 9)
	b[4] = op
	binary.LittleEndian.PutUint64(b[5:], k)
	_, err := cl.bw.Write(b[:])
	return err
}

func (cl *Client) sendBin2(op byte, k, v uint64) error {
	var b [21]byte
	binary.LittleEndian.PutUint32(b[:4], 17)
	b[4] = op
	binary.LittleEndian.PutUint64(b[5:], k)
	binary.LittleEndian.PutUint64(b[13:], v)
	_, err := cl.bw.Write(b[:])
	return err
}

func (cl *Client) send1(cmd string, k uint64) error {
	var buf [64]byte
	b := append(buf[:0], cmd...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, k, 10)
	b = append(b, '\r', '\n')
	_, err := cl.bw.Write(b)
	return err
}

func (cl *Client) send2(cmd string, k, v uint64) error {
	var buf [96]byte
	b := append(buf[:0], cmd...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, k, 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	b = append(b, '\r', '\n')
	_, err := cl.bw.Write(b)
	return err
}

// Reply is one parsed server reply. Exactly one interpretation applies per
// command (see the protocol table in the package comment).
type Reply struct {
	// Status holds "+" replies ("OK", "PONG").
	Status string
	// Value and Found hold "$" replies ($-1 sets Found false).
	Value uint64
	Found bool
	// Int holds ":" replies.
	Int int64
	// Array holds "*" reply payload lines, verbatim without terminators.
	Array []string
	// Err holds "-ERR" replies.
	Err string
}

// IsErr reports whether the reply is a protocol-level error.
func (r Reply) IsErr() bool { return r.Err != "" }

// ReadReply consumes one reply (flushing queued commands first is the
// caller's job; the sync helpers do it). With a timeout set, the whole
// reply — including every array line — must arrive within it.
func (cl *Client) ReadReply() (Reply, error) {
	cl.armRead()
	r, err := cl.readReply()
	return r, mapErr(err)
}

func (cl *Client) readReply() (Reply, error) {
	if cl.bin {
		return cl.readBinReply()
	}
	line, err := cl.readLine()
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, errors.New("server: empty reply line")
	}
	switch line[0] {
	case '+':
		return Reply{Status: line[1:]}, nil
	case '-':
		return Reply{Err: strings.TrimPrefix(line[1:], "ERR ")}, nil
	case ':':
		n, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("server: bad integer reply %q", line)
		}
		return Reply{Int: n}, nil
	case '$':
		if line == "$-1" {
			return Reply{}, nil
		}
		v, err := strconv.ParseUint(line[1:], 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("server: bad value reply %q", line)
		}
		return Reply{Value: v, Found: true}, nil
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil || n < 0 {
			return Reply{}, fmt.Errorf("server: bad array reply %q", line)
		}
		arr := make([]string, n)
		for i := 0; i < n; i++ {
			if arr[i], err = cl.readLine(); err != nil {
				return Reply{}, err
			}
		}
		return Reply{Array: arr}, nil
	}
	return Reply{}, fmt.Errorf("server: unknown reply %q", line)
}

// readBinReply parses one binary reply frame into the shared Reply shape:
// PAIRS entries render as "k v" lines and MULTI entries as "$v"/"$-1", so
// Scan and array handling work identically across protocols.
func (cl *Client) readBinReply() (Reply, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(cl.br, hdr[:]); err != nil {
		return Reply{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > maxBinFrame {
		return Reply{}, fmt.Errorf("server: bad binary frame length %d", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(cl.br, payload); err != nil {
		return Reply{}, err
	}
	switch hdr[4] {
	case binTagOK:
		return Reply{Status: "OK"}, nil
	case binTagValue:
		if len(payload) != 8 {
			return Reply{}, errors.New("server: malformed VALUE frame")
		}
		return Reply{Value: binary.LittleEndian.Uint64(payload), Found: true}, nil
	case binTagNil:
		return Reply{}, nil
	case binTagTrue:
		return Reply{Int: 1}, nil
	case binTagFalse:
		return Reply{Int: 0}, nil
	case binTagPairs:
		if len(payload) < 4 {
			return Reply{}, errors.New("server: malformed PAIRS frame")
		}
		cnt := int(binary.LittleEndian.Uint32(payload))
		if len(payload) != 4+16*cnt {
			return Reply{}, errors.New("server: malformed PAIRS frame")
		}
		arr := make([]string, cnt)
		for i := 0; i < cnt; i++ {
			k := binary.LittleEndian.Uint64(payload[4+16*i:])
			v := binary.LittleEndian.Uint64(payload[12+16*i:])
			arr[i] = strconv.FormatUint(k, 10) + " " + strconv.FormatUint(v, 10)
		}
		return Reply{Array: arr}, nil
	case binTagMulti:
		if len(payload) < 4 {
			return Reply{}, errors.New("server: malformed MULTI frame")
		}
		cnt := int(binary.LittleEndian.Uint32(payload))
		if len(payload) != 4+9*cnt {
			return Reply{}, errors.New("server: malformed MULTI frame")
		}
		arr := make([]string, cnt)
		for i := 0; i < cnt; i++ {
			if payload[4+9*i] == 0 {
				arr[i] = "$-1"
			} else {
				arr[i] = "$" + strconv.FormatUint(binary.LittleEndian.Uint64(payload[5+9*i:]), 10)
			}
		}
		return Reply{Array: arr}, nil
	case binTagErr:
		return Reply{Err: string(payload)}, nil
	case binTagStats:
		// Render as "name value" lines, the text protocol's STATS shape,
		// so Stats() parses both protocols identically.
		if len(payload) < 4 {
			return Reply{}, errors.New("server: malformed STATS frame")
		}
		cnt := int(binary.LittleEndian.Uint32(payload))
		p := payload[4:]
		arr := make([]string, 0, cnt)
		for i := 0; i < cnt; i++ {
			if len(p) < 1 || len(p) < 1+int(p[0])+8 {
				return Reply{}, errors.New("server: malformed STATS frame")
			}
			name := string(p[1 : 1+p[0]])
			v := binary.LittleEndian.Uint64(p[1+p[0]:])
			arr = append(arr, name+" "+strconv.FormatUint(v, 10))
			p = p[1+int(p[0])+8:]
		}
		if len(p) != 0 {
			return Reply{}, errors.New("server: malformed STATS frame")
		}
		return Reply{Array: arr}, nil
	}
	return Reply{}, fmt.Errorf("server: unknown binary reply tag %d", hdr[4])
}

func (cl *Client) readLine() (string, error) {
	line, err := cl.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// roundTrip flushes and reads one reply, folding protocol errors into err.
func (cl *Client) roundTrip() (Reply, error) {
	if err := cl.Flush(); err != nil {
		return Reply{}, err
	}
	r, err := cl.ReadReply()
	if err != nil {
		return Reply{}, err
	}
	if r.IsErr() {
		if msg, ok := strings.CutPrefix(r.Err, "DEGRADED"); ok {
			return r, fmt.Errorf("%w:%s", ErrDegraded, msg)
		}
		if msg, ok := strings.CutPrefix(r.Err, "WAIT"); ok {
			return r, fmt.Errorf("%w:%s", ErrWait, msg)
		}
		if msg, ok := strings.CutPrefix(r.Err, "REPLICA"); ok {
			return r, fmt.Errorf("%w:%s", ErrReplica, msg)
		}
		return r, errors.New("server: " + r.Err)
	}
	return r, nil
}

// Ping round-trips a PING.
func (cl *Client) Ping() error {
	var err error
	if cl.bin {
		err = cl.sendBin0(binOpPing)
	} else {
		err = cl.Send("PING")
	}
	if err != nil {
		return err
	}
	_, err = cl.roundTrip()
	return err
}

// Put upserts key to value.
func (cl *Client) Put(k, v uint64) error {
	if err := cl.SendPut(k, v); err != nil {
		return err
	}
	_, err := cl.roundTrip()
	return err
}

// Get looks up a key, on a replica connection when read routing says so.
func (cl *Client) Get(k uint64) (uint64, bool, error) {
	rc := cl.readClient()
	if err := rc.SendGet(k); err != nil {
		return 0, false, err
	}
	r, err := rc.roundTrip()
	return r.Value, r.Found, err
}

// Insert adds key with value; false if present.
func (cl *Client) Insert(k, v uint64) (bool, error) {
	if err := cl.SendInsert(k, v); err != nil {
		return false, err
	}
	r, err := cl.roundTrip()
	return r.Int == 1, err
}

// Del removes a key; false if absent.
func (cl *Client) Del(k uint64) (bool, error) {
	if err := cl.SendDel(k); err != nil {
		return false, err
	}
	r, err := cl.roundTrip()
	return r.Int == 1, err
}

// Update sets key to v if present, returning the new value.
func (cl *Client) Update(k, v uint64) (uint64, bool, error) {
	if err := cl.SendUpdate(k, v); err != nil {
		return 0, false, err
	}
	r, err := cl.roundTrip()
	return r.Value, r.Found, err
}

// Scan returns up to max pairs of [lo, hi] in key order, on a replica
// connection when read routing says so.
func (cl *Client) Scan(lo, hi uint64, max int) (keys, vals []uint64, err error) {
	rc := cl.readClient()
	if err := rc.SendScan(lo, hi, max); err != nil {
		return nil, nil, err
	}
	r, err := rc.roundTrip()
	if err != nil {
		return nil, nil, err
	}
	for _, line := range r.Array {
		k, v, ok := strings.Cut(line, " ")
		if !ok {
			return nil, nil, fmt.Errorf("server: bad scan entry %q", line)
		}
		ku, err1 := strconv.ParseUint(k, 10, 64)
		vu, err2 := strconv.ParseUint(v, 10, 64)
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("server: bad scan entry %q", line)
		}
		keys = append(keys, ku)
		vals = append(vals, vu)
	}
	return keys, vals, nil
}

// Promote round-trips a PROMOTE: the server, if a replica, becomes a
// primary (failover). Idempotent on a server that already is one.
func (cl *Client) Promote() error {
	var err error
	if cl.bin {
		err = cl.sendBin0(binOpPromote)
	} else {
		err = cl.Send("PROMOTE")
	}
	if err != nil {
		return err
	}
	_, err = cl.roundTrip()
	return err
}

// Stats fetches the server's counters (either protocol).
func (cl *Client) Stats() (map[string]uint64, error) {
	var err error
	if cl.bin {
		err = cl.sendBin0(binOpStats)
	} else {
		err = cl.Send("STATS")
	}
	if err != nil {
		return nil, err
	}
	r, err := cl.roundTrip()
	if err != nil {
		return nil, err
	}
	m := make(map[string]uint64, len(r.Array))
	for _, line := range r.Array {
		name, v, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("server: bad stats entry %q", line)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("server: bad stats entry %q", line)
		}
		m[name] = n
	}
	return m, nil
}

// Quit sends QUIT and closes.
func (cl *Client) Quit() error {
	var err error
	if cl.bin {
		err = cl.sendBin0(binOpQuit)
	} else {
		err = cl.Send("QUIT")
	}
	if err != nil {
		return err
	}
	if _, err := cl.roundTrip(); err != nil {
		return err
	}
	return cl.Close()
}

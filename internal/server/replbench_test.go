package server

import (
	"testing"
	"time"
)

// TestBenchReplSmoke runs the replica read-scaling harness end to end at
// smoke length: the fleet comes up, catches up, serves the offered read
// load with zero protocol errors, and tears down.
func TestBenchReplSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness; skipped in -short")
	}
	res, err := BenchRepl(2)(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Lat == nil {
		t.Fatalf("empty result: %+v", res)
	}
}

// TestBenchWait1Smoke runs the WAIT-quorum write-latency harness at smoke
// length.
func TestBenchWait1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness; skipped in -short")
	}
	res, err := BenchWait1(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Lat == nil {
		t.Fatalf("empty result: %+v", res)
	}
}

package server

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestBinaryRoundTrips exercises every binary opcode through the client's
// binary mode — the same command sequence as TestRoundTrips, decoded from
// fixed-layout frames instead of text lines.
func TestBinaryRoundTrips(t *testing.T) {
	addr, _, _ := startServer(t, core.KindSkiplist, 4, Config{})
	cl, err := DialBin(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(7, 70); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(7); err != nil || !ok || v != 70 {
		t.Fatalf("get: %d %v %v", v, ok, err)
	}
	if _, ok, err := cl.Get(8); err != nil || ok {
		t.Fatalf("missing get: %v %v", ok, err)
	}
	if ins, err := cl.Insert(8, 80); err != nil || !ins {
		t.Fatalf("insert: %v %v", ins, err)
	}
	if ins, err := cl.Insert(8, 81); err != nil || ins {
		t.Fatalf("duplicate insert: %v %v", ins, err)
	}
	if v, ok, err := cl.Update(8, 88); err != nil || !ok || v != 88 {
		t.Fatalf("update: %d %v %v", v, ok, err)
	}
	if _, ok, err := cl.Update(9, 99); err != nil || ok {
		t.Fatalf("update missing: %v %v", ok, err)
	}
	keys, vals, err := cl.Scan(1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != 7 || keys[1] != 8 || vals[1] != 88 {
		t.Fatalf("scan: %v %v", keys, vals)
	}
	if keys, _, err := cl.Scan(1, 100, 0); err != nil || len(keys) != 0 {
		t.Fatalf("scan max=0: %v %v", keys, err)
	}
	if err := cl.SendMGet([]uint64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"$70", "$88", "$-1"}
	if len(rep.Array) != len(want) {
		t.Fatalf("mget: %v", rep.Array)
	}
	for i := range want {
		if rep.Array[i] != want[i] {
			t.Fatalf("mget[%d] = %q, want %q", i, rep.Array[i], want[i])
		}
	}
	if del, err := cl.Del(7); err != nil || !del {
		t.Fatalf("del: %v %v", del, err)
	}
	if del, err := cl.Del(7); err != nil || del {
		t.Fatalf("double del: %v %v", del, err)
	}
	// STATS speaks binary too (tag 8), parsing into the same map shape as
	// the text protocol.
	if st, err := cl.Stats(); err != nil || st["pool_workers"] == 0 {
		t.Fatalf("binary STATS: %v (stats %v)", err, st)
	}
	if err := cl.Quit(); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryPipelining queues a window of binary writes before reading a
// single reply and checks replies come back in submission order with
// reply-after-fence batching underneath.
func TestBinaryPipelining(t *testing.T) {
	addr, srv, _ := startServer(t, core.KindHash, 4, Config{})
	cl, err := DialBin(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 256
	for i := uint64(1); i <= n; i++ {
		if err := cl.SendPut(i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		if err := cl.SendGet(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= n; i++ {
		r, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != "OK" {
			t.Fatalf("put %d: %+v", i, r)
		}
	}
	for i := uint64(1); i <= n; i++ {
		r, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Value != i*3 {
			t.Fatalf("get %d: %+v", i, r)
		}
	}
	if bs := srv.Pool().Stats(); bs.Ops != n {
		t.Fatalf("pool saw %d ops, want %d", bs.Ops, n)
	}
}

// readRawFrame reads one reply frame off a raw binary-protocol connection.
func readRawFrame(t *testing.T, br *bufio.Reader) (tag byte, payload []byte) {
	t.Helper()
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatalf("read frame header: %v", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > maxBinFrame {
		t.Fatalf("bad reply frame length %d", n)
	}
	payload = make([]byte, n-1)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatalf("read frame payload: %v", err)
	}
	return hdr[4], payload
}

// TestBinaryErrorFrames checks the two error classes: a semantic error (bad
// payload shape, unknown opcode) answers with an ERR frame and keeps the
// connection usable; a framing error (length out of range) closes it.
func TestBinaryErrorFrames(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 0, Config{})
	_, path, _ := strings.Cut(addr, ":")
	c, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)

	// Magic + version, then a GET with a truncated 4-byte payload.
	frame := []byte{binMagic, binVersion, 5, 0, 0, 0, binOpGet, 1, 2, 3, 4}
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	tag, payload := readRawFrame(t, br)
	if tag != binTagErr || !strings.Contains(string(payload), "8-byte") {
		t.Fatalf("truncated GET: tag %d payload %q", tag, payload)
	}

	// Unknown opcode: ERR, connection still open.
	if _, err := c.Write([]byte{1, 0, 0, 0, 0xEE}); err != nil {
		t.Fatal(err)
	}
	if tag, payload = readRawFrame(t, br); tag != binTagErr {
		t.Fatalf("unknown opcode: tag %d payload %q", tag, payload)
	}

	// The connection survived both: a PING still round-trips.
	if _, err := c.Write([]byte{1, 0, 0, 0, binOpPing}); err != nil {
		t.Fatal(err)
	}
	if tag, _ = readRawFrame(t, br); tag != binTagOK {
		t.Fatalf("ping after errors: tag %d", tag)
	}

	// Framing error: a zero length field ends the connection after the ERR.
	if _, err := c.Write([]byte{0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if tag, _ = readRawFrame(t, br); tag != binTagErr {
		t.Fatalf("zero-length frame: tag %d", tag)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection should close after framing error, got %v", err)
	}
}

// TestBinaryVersionMismatch: the right magic with the wrong version gets a
// textual error (the handshake failed before the binary framing started).
func TestBinaryVersionMismatch(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 0, Config{})
	_, path, _ := strings.Cut(addr, ":")
	c, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte{binMagic, 0x7F}); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "-ERR") {
		t.Fatalf("version mismatch reply %q, %v", line, err)
	}
}

// TestProtocolCoexistence runs a text client and a binary client over the
// same listener at once — the magic-byte sniff is per connection.
func TestProtocolCoexistence(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 4, Config{})
	txt, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer txt.Close()
	bin, err := DialBin(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()

	if err := txt.Put(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := bin.Put(2, 20); err != nil {
		t.Fatal(err)
	}
	// Each protocol reads the other's write through the shared store.
	if v, ok, err := bin.Get(1); err != nil || !ok || v != 10 {
		t.Fatalf("binary get of text put: %d %v %v", v, ok, err)
	}
	if v, ok, err := txt.Get(2); err != nil || !ok || v != 20 {
		t.Fatalf("text get of binary put: %d %v %v", v, ok, err)
	}
}

package server

// End-to-end replication tests: a primary and replicas as real servers on
// Unix sockets, the replication channel negotiated over the shared wire
// protocol, and failover driven through PROMOTE.

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crashtest"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/store"
)

// startReplicaServer opens a fresh store, serves it, and attaches it to
// primaryAddr's replication stream.
func startReplicaServer(t *testing.T, primaryAddr string, kind core.Kind, shards int, wmPath string) (string, *Server) {
	t.Helper()
	st, err := store.Open(store.Config{
		Kind: kind, Policy: persist.NVTraverse{}, Profile: pmem.ProfileZero,
		Shards: shards, SizeHint: 1 << 12, MaxSessions: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{MaxConns: 8})
	if err := srv.StartReplica(primaryAddr, wmPath); err != nil {
		t.Fatal(err)
	}
	addr := "unix:" + filepath.Join(t.TempDir(), "replica.sock")
	ln, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("replica serve: %v", err)
		}
		st.Close()
	})
	return addr, srv
}

// waitForKey polls a client until key reads back with want.
func waitForKey(t *testing.T, cl *Client, key, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok, err := cl.Get(key)
		if err == nil && ok && v == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %d never reached %d (last: %d found=%v err=%v)", key, want, v, ok, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitForStat(t *testing.T, cl *Client, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Stats()
		if err == nil && st[name] == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stat %s never reached %d (last %v, err %v)", name, want, st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationStreamAndSnapshot covers both catch-up paths: keys
// written before the replica attaches arrive via the bootstrap snapshot,
// keys written after it via the stream, and deletes replicate as deletes.
func TestReplicationStreamAndSnapshot(t *testing.T) {
	paddr, _, _ := startServer(t, core.KindHash, 4, Config{})
	pcl, err := Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.Close()

	// Pre-attach state: snapshot material.
	for k := uint64(1); k <= 100; k++ {
		if err := pcl.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	raddr, _ := startReplicaServer(t, paddr, core.KindHash, 4, "")
	rcl, err := Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	waitForKey(t, rcl, 100, 1000)

	// Post-attach writes: stream material, including deletes and the
	// effect forms of insert/update.
	for k := uint64(101); k <= 200; k++ {
		if err := pcl.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pcl.Del(50); err != nil {
		t.Fatal(err)
	}
	if ok, err := pcl.Insert(300, 3); err != nil || !ok {
		t.Fatalf("insert: %v %v", ok, err)
	}
	if _, ok, err := pcl.Update(300, 4); err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	waitForKey(t, rcl, 300, 4)
	waitForKey(t, rcl, 200, 2000)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok, err := rcl.Get(50); err == nil && !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("delete of key 50 never replicated")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Topology stats on both ends.
	pst, err := pcl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if pst["repl_role"] != uint64(store.RolePrimary) || pst["repl_replicas"] != 1 {
		t.Fatalf("primary stats: %v", pst)
	}
	rst, err := rcl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if rst["repl_role"] != uint64(store.RoleReplica) || rst["repl_applied_groups"] == 0 {
		t.Fatalf("replica stats: %v", rst)
	}

	// The staleness contract's hard edge: replicas refuse writes, typed.
	if err := rcl.Put(9999, 1); !errors.Is(err, ErrReplica) {
		t.Fatalf("replica write: %v, want ErrReplica", err)
	}
}

// TestWaitQuorumOverWire pins the WAIT semantics end to end: with K=1 and
// no replica a write fails typed after the quorum timeout (durable but
// unconfirmed), and succeeds once a replica is attached and confirming.
func TestWaitQuorumOverWire(t *testing.T) {
	paddr, _, _ := startServer(t, core.KindHash, 2, Config{
		WaitReplicas: 1, WaitTimeout: 150 * time.Millisecond,
	})
	pcl, err := Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.Close()

	if err := pcl.Put(1, 1); !errors.Is(err, ErrWait) {
		t.Fatalf("unreplicated WAIT write: %v, want ErrWait", err)
	}
	// Reads never wait on the quorum — and the failed WAIT write IS
	// durable on the primary, which the read shows.
	if v, ok, err := pcl.Get(1); err != nil || !ok || v != 1 {
		t.Fatalf("read after quorum failure: %d %v %v", v, ok, err)
	}

	raddr, _ := startReplicaServer(t, paddr, core.KindHash, 2, "")
	rcl, err := Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	waitForStat(t, pcl, "repl_replicas", 1)

	// Non-sticky: the same client, the same connection, now succeeds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := pcl.Put(2, 2); err == nil {
			break
		} else if !errors.Is(err, ErrWait) {
			t.Fatalf("WAIT write after attach: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("WAIT writes never recovered after replica attach")
		}
	}
	// Replied ⇒ replicated: the acknowledged write is already on the
	// replica (modulo only this Get's own round trip).
	waitForKey(t, rcl, 2, 2)
}

// TestPromoteFailover kills the primary under load and promotes the
// replica: every write the primary acknowledged under WAIT must be
// present on the promoted replica, which must accept writes afterwards.
func TestPromoteFailover(t *testing.T) {
	paddr, psrv, _ := startServer(t, core.KindHash, 2, Config{
		WaitReplicas: 1, WaitTimeout: 2 * time.Second,
	})
	raddr, _ := startReplicaServer(t, paddr, core.KindHash, 2, "")
	rcl, err := Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()

	pcl, err := Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.Close()
	waitForStat(t, pcl, "repl_replicas", 1)

	// Concurrent writers recording which inserts were acknowledged; the
	// primary dies mid-load.
	const writers, perWriter = 3, 200
	type rec struct {
		key, value uint64
		acked, ok  bool
	}
	records := make([][]rec, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(paddr)
			if err != nil {
				return
			}
			defer cl.Close()
			base := (uint64(w) + 1) << 32
			for i := uint64(1); i <= perWriter; i++ {
				k, v := base+i, i|1
				r := rec{key: k, value: v}
				ok, err := cl.Insert(k, v)
				if err == nil {
					r.acked, r.ok = true, ok
				} else if errors.Is(err, ErrWait) {
					// Durable on the primary but unconfirmed: after a
					// failover this write may be lost — the client must
					// NOT count it as acknowledged. In-flight for the
					// checker.
				} else {
					return // primary died; everything after is unsent
				}
				records[w] = append(records[w], r)
			}
		}(w)
	}
	// Let the load run, then kill the primary out from under it.
	time.Sleep(100 * time.Millisecond)
	psrv.Close()
	wg.Wait()

	if err := rcl.Promote(); err != nil {
		t.Fatal(err)
	}

	// The durable-linearizability checker over the promoted replica:
	// acked ⇒ present with the exact value, in-flight either way.
	view := &replicaView{cl: rcl}
	var hists []*crashtest.History
	acked := 0
	for _, rs := range records {
		h := &crashtest.History{}
		for _, r := range rs {
			view.attempted = append(view.attempted, r.key)
			if r.acked {
				h.Completed(crashtest.OpInsert, r.key, r.value, r.ok)
				acked++
			} else {
				h.InFlight(crashtest.OpInsert, r.key, r.value)
			}
		}
		hists = append(hists, h)
	}
	if acked == 0 {
		t.Fatal("no write was acknowledged before the kill; torture proved nothing")
	}
	violations, present := crashtest.Check(view, nil, hists, crashtest.CheckConfig{CheckValues: true})
	if view.err != nil {
		t.Fatalf("wire error during check: %v", view.err)
	}
	if len(violations) > 0 {
		t.Fatalf("%d lost acked writes after failover (%d present): first %s",
			len(violations), present, violations[0])
	}

	// The promoted replica is a primary now: writes succeed.
	if err := rcl.Put(424242, 1); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	st, err := rcl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["repl_role"] != uint64(store.RolePrimary) {
		t.Fatalf("promoted stats: %v", st)
	}
}

// replicaView adapts a wire client to crashtest.Set (pmem.Thread params
// unused: the structure lives behind the socket).
type replicaView struct {
	cl        *Client
	attempted []uint64
	err       error
}

func (r *replicaView) fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

func (r *replicaView) Find(_ *pmem.Thread, k uint64) (uint64, bool) {
	v, ok, err := r.cl.Get(k)
	r.fail(err)
	return v, ok
}

func (r *replicaView) Insert(_ *pmem.Thread, k, v uint64) bool {
	ok, err := r.cl.Insert(k, v)
	r.fail(err)
	return ok
}

func (r *replicaView) Delete(_ *pmem.Thread, k uint64) bool {
	ok, err := r.cl.Del(k)
	r.fail(err)
	return ok
}

func (r *replicaView) Recover(*pmem.Thread) {}

func (r *replicaView) Contents(*pmem.Thread) []uint64 {
	var present []uint64
	for _, k := range r.attempted {
		if _, ok := r.Find(nil, k); ok {
			present = append(present, k)
		}
	}
	return present
}

// TestPromoteIdempotent pins PROMOTE on a server that already is a
// primary: +OK, no state change.
func TestPromoteIdempotent(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 1, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(1, 1); err != nil {
		t.Fatal(err)
	}
}

// TestDialOptionsReadRouting pins the redesigned Dial surface: one
// constructor, options for protocol and routing, reads served by the
// replica connection.
func TestDialOptionsReadRouting(t *testing.T) {
	paddr, _, _ := startServer(t, core.KindHash, 2, Config{})
	raddr, rsrv := startReplicaServer(t, paddr, core.KindHash, 2, "")

	cl, err := Dial(paddr,
		WithBinaryProto(),
		WithDialTimeout(5*time.Second),
		WithReadFrom(ReadReplica),
		WithReplicaAddrs(raddr),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Put(77, 770); err != nil {
		t.Fatal(err)
	}
	// The synchronous Get goes to the replica: poll until the stream
	// catches up (read-your-writes explicitly does NOT hold).
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok, err := cl.Get(77)
		if err == nil && ok && v == 770 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica-routed read never caught up: %d %v %v", v, ok, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Prove the read really came from the replica's server.
	if got := rsrv.connCount(); got == 0 {
		t.Fatal("no connection reached the replica server")
	}

	// ReadNearest with no replica addrs degenerates to the primary.
	cl2, err := Dial(paddr, WithReadFrom(ReadNearest))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if v, ok, err := cl2.Get(77); err != nil || !ok || v != 770 {
		t.Fatalf("nearest read: %d %v %v", v, ok, err)
	}
}

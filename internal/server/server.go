// Package server is the network front end of the durable store: a
// pipelined, RESP-lite text protocol over TCP or Unix sockets on top of
// store.Store, with the group-commit batcher (internal/batcher) at its
// core. Every write a connection submits rides a shared batch, so the
// commit fence durable linearizability demands before an acknowledgement
// is paid once per shard group per flush across all connections — the
// network-level analogue of shard.Session.Apply's per-batch amortization.
//
// # Protocol
//
// Requests are single lines of space-separated decimal fields, terminated
// by LF (CRLF accepted). Keys and values are uint64:
//
//	PING                      -> +PONG
//	GET k                     -> $value | $-1
//	PUT k v                   -> +OK                 (atomic upsert)
//	INSERT k v                -> :1 | :0             (1 = inserted)
//	DEL k                     -> :1 | :0             (1 = deleted)
//	UPDATE k v                -> $newvalue | $-1     (set to v if present)
//	SCAN lo hi [max]          -> *n, then n lines "k v"
//	MGET k1 k2 ... kn         -> *n, then n lines $value | $-1
//	STATS                     -> *n, then n lines "name value"
//	QUIT                      -> +OK, connection closes
//
// Errors are "-ERR message". Clients may pipeline: the server replies in
// request order, and a reply to a write is sent only after the commit
// fence covering it has landed (reply-after-fence; see DESIGN.md). Within
// one connection, a read observes every write the same connection issued
// before it.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/batcher"
	"repro/internal/shard"
	"repro/internal/store"
)

// Config tunes a Server.
type Config struct {
	// MaxConns bounds concurrent connections (each holds a read session of
	// the store while open; default 64). Excess connections are refused
	// with an error reply.
	MaxConns int
	// Pipeline bounds the per-connection reply queue: a client may have at
	// most this many requests outstanding before the server stops reading
	// its socket (default 128).
	Pipeline int
	// Batch is the group-commit policy for writes.
	Batch batcher.Config
	// MaxScan caps SCAN reply sizes (default 4096 entries); the explicit
	// limit argument may lower it but not raise it.
	MaxScan int
}

// Server serves the store protocol. One Server may serve many listeners.
type Server struct {
	st  store.Store
	b   *batcher.Batcher
	cfg Config

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	sessions  chan store.Session
	created   int
	closed    bool

	handlers sync.WaitGroup
}

// New builds a server over st. The server owns one batcher session; read
// sessions are drawn from a pool of at most cfg.MaxConns. Callers must
// ensure the store was opened with MaxSessions ≥ MaxConns+2.
func New(st store.Store, cfg Config) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 128
	}
	if cfg.MaxScan <= 0 {
		cfg.MaxScan = 4096
	}
	return &Server{
		st:        st,
		b:         batcher.New(st, cfg.Batch),
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		sessions:  make(chan store.Session, cfg.MaxConns),
	}
}

// Batcher exposes the group-commit stage (stats, tests).
func (s *Server) Batcher() *batcher.Batcher { return s.b }

// Listen resolves an address of the form "unix:/path/to.sock",
// "tcp:host:port", or a bare "host:port" (TCP). A Unix socket file left
// behind by a dead server is detected — the bind fails with EADDRINUSE and
// nothing answers a probe connection — and removed before one retry, so a
// restart succeeds without a second live server ever being able to steal
// the address. The probe-remove-rebind sequence is serialized through a
// flock on a sidecar "<path>.lock" file, so two simultaneously restarting
// servers cannot unlink each other's fresh bind; the loser sees the
// winner answer its probe and fails with the original EADDRINUSE.
func Listen(addr string) (net.Listener, error) {
	network, address := SplitAddr(addr)
	ln, err := net.Listen(network, address)
	if err == nil || network != "unix" || !errors.Is(err, syscall.EADDRINUSE) {
		return ln, err
	}
	lock, lerr := os.OpenFile(address+".lock", os.O_CREATE|os.O_RDWR, 0o600)
	if lerr != nil {
		return nil, err
	}
	defer lock.Close() // Close drops the flock
	if syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) != nil {
		// Another process is mid-takeover: the address is theirs now.
		return nil, err
	}
	if c, derr := net.DialTimeout(network, address, 250*time.Millisecond); derr == nil {
		c.Close() // a live server answered: genuinely in use
		return nil, err
	} else if !errors.Is(derr, syscall.ECONNREFUSED) && !errors.Is(derr, os.ErrNotExist) {
		// Only a refused connection (or the file vanishing) proves the
		// owner is dead. Anything else — e.g. EAGAIN from a live server
		// whose accept backlog is full — must not cost it the socket.
		return nil, err
	}
	if rerr := os.Remove(address); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return nil, err
	}
	return net.Listen(network, address)
}

// SplitAddr splits "unix:/path" / "tcp:host:port" / "host:port" into
// (network, address).
func SplitAddr(addr string) (network, address string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):]
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):]
	default:
		return "tcp", addr
	}
}

// ListenAndServe listens on addr (see Listen) and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := Listen(addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after Close,
// or the accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.handlers.Done()
			s.handle(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection, waits for the
// handlers to drain, and flushes and stops the batcher.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
	s.b.Close()
}

// getSession draws a read session from the pool, creating one if the pool
// has headroom.
func (s *Server) getSession() (store.Session, bool) {
	select {
	case sess := <-s.sessions:
		return sess, true
	default:
	}
	s.mu.Lock()
	if s.created < s.cfg.MaxConns {
		s.created++
		s.mu.Unlock()
		return s.st.NewSession(), true
	}
	s.mu.Unlock()
	// Pool exhausted and no free session: refuse rather than block, so a
	// connection flood cannot wedge the accept loop's handlers.
	return nil, false
}

func (s *Server) putSession(sess store.Session) { s.sessions <- sess }

// slot is one in-order reply: the writer goroutine sends buf once ready is
// closed. Write replies are completed by the batcher callback; read replies
// are completed synchronously by the reader.
type slot struct {
	ready chan struct{}
	buf   []byte
}

// handle runs one connection: a reader goroutine (this one) parses and
// dispatches commands, a writer goroutine sends completed replies in
// request order. The bounded slot channel is the pipelining window and the
// backpressure: when a client floods requests faster than commits, the
// reader blocks enqueueing and the socket fills.
func (s *Server) handle(c net.Conn) {
	defer c.Close()
	sess, ok := s.getSession()
	if !ok {
		fmt.Fprintf(c, "-ERR max connections (%d) reached\r\n", s.cfg.MaxConns)
		return
	}
	defer s.putSession(sess)

	slots := make(chan *slot, s.cfg.Pipeline)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		bw := bufio.NewWriterSize(c, 64<<10)
		for sl := range slots {
			<-sl.ready
			bw.Write(sl.buf)
			// Flush only when no further reply is queued: pipelined replies
			// coalesce into few syscalls.
			if len(slots) == 0 {
				bw.Flush()
			}
		}
		bw.Flush()
	}()
	// On exit: stop the reply stream, let the writer drain every completed
	// reply (a QUIT's +OK must reach the wire), then the deferred c.Close
	// runs.
	defer func() {
		close(slots)
		writerWG.Wait()
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	conn := &connState{srv: s, sess: sess, slots: slots}
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			if errors.Is(err, bufio.ErrBufferFull) {
				conn.reply([]byte("-ERR request line too long\r\n"))
			}
			return
		}
		if !conn.dispatch(line) {
			return
		}
	}
}

// connState is the per-connection request dispatcher.
type connState struct {
	srv   *Server
	sess  store.Session
	slots chan<- *slot
	// writes counts the connection's outstanding (submitted, not yet
	// committed) writes. Reads wait for it to drain: within one batcher
	// flush, shard groups are acknowledged in shard-index order, not
	// submission order, so waiting on only the most recent write would let
	// a read run while an earlier write to a later-committing shard is
	// still unexecuted. Add and Wait both happen on the reader goroutine
	// only (Done comes from the batcher callback), which satisfies the
	// WaitGroup reuse rule.
	writes sync.WaitGroup
	// scratch buffers reused across requests.
	fields  []string
	keys    []uint64
	res     []store.OpResult
	scanBuf []scanKV
}

// scanKV is one collected SCAN entry.
type scanKV struct{ k, v uint64 }

// closedReady is the shared pre-closed channel of every already-complete
// reply: only write slots, whose completion is asynchronous, need a
// private channel.
var closedReady = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// reply enqueues an already-complete reply.
func (cs *connState) reply(buf []byte) {
	cs.slots <- &slot{ready: closedReady, buf: buf}
}

// submitWrite enqueues a reply slot for op and submits it to the batcher;
// format renders the result once the covering fence lands.
func (cs *connState) submitWrite(op store.Op, format func(store.OpResult) []byte) {
	sl := &slot{ready: make(chan struct{})}
	cs.slots <- sl
	cs.writes.Add(1)
	cs.srv.b.Submit(op, func(res store.OpResult, err error) {
		if err != nil {
			sl.buf = []byte("-ERR " + err.Error() + "\r\n")
		} else {
			sl.buf = format(res)
		}
		close(sl.ready)
		cs.writes.Done()
	})
}

// awaitWrites blocks until every write this connection has submitted has
// committed or failed (read-your-writes ordering). Waiting on all
// outstanding writes — not just the most recent — matters because the
// batcher acknowledges one flush's shard groups in shard-index order.
func (cs *connState) awaitWrites() {
	cs.writes.Wait()
}

// dispatch parses and executes one request line; false closes the
// connection.
func (cs *connState) dispatch(line []byte) bool {
	fields := splitFields(line, cs.fields[:0])
	cs.fields = fields
	if len(fields) == 0 {
		return true // blank line: ignore
	}
	cmd := fields[0]
	args := fields[1:]
	switch {
	case strings.EqualFold(cmd, "GET"):
		k, ok := parse1(cs, args, "GET key")
		if !ok {
			return true
		}
		cs.awaitWrites()
		v, found := cs.sess.Get(k)
		cs.reply(appendValue(nil, v, found))
	case strings.EqualFold(cmd, "PUT"):
		k, v, ok := parse2(cs, args, "PUT key value")
		if !ok {
			return true
		}
		cs.submitWrite(store.Op{Kind: shard.OpPut, Key: k, Value: v},
			func(store.OpResult) []byte { return []byte("+OK\r\n") })
	case strings.EqualFold(cmd, "INSERT"):
		k, v, ok := parse2(cs, args, "INSERT key value")
		if !ok {
			return true
		}
		cs.submitWrite(store.Op{Kind: shard.OpInsert, Key: k, Value: v}, appendBoolInt)
	case strings.EqualFold(cmd, "DEL"):
		k, ok := parse1(cs, args, "DEL key")
		if !ok {
			return true
		}
		cs.submitWrite(store.Op{Kind: shard.OpDelete, Key: k}, appendBoolInt)
	case strings.EqualFold(cmd, "UPDATE"):
		k, v, ok := parse2(cs, args, "UPDATE key value")
		if !ok {
			return true
		}
		cs.submitWrite(store.Op{Kind: shard.OpUpdate, Key: k, Value: v},
			func(res store.OpResult) []byte { return appendValue(nil, res.Value, res.OK) })
	case strings.EqualFold(cmd, "SCAN"):
		cs.execScan(args)
	case strings.EqualFold(cmd, "MGET"):
		cs.execMGet(args)
	case strings.EqualFold(cmd, "STATS"):
		cs.awaitWrites()
		cs.reply(cs.statsReply())
	case strings.EqualFold(cmd, "PING"):
		cs.reply([]byte("+PONG\r\n"))
	case strings.EqualFold(cmd, "QUIT"):
		cs.reply([]byte("+OK\r\n"))
		return false
	default:
		cs.reply([]byte("-ERR unknown command '" + cmd + "'\r\n"))
	}
	return true
}

func (cs *connState) execScan(args []string) {
	if len(args) < 2 || len(args) > 3 {
		cs.reply([]byte("-ERR usage: SCAN lo hi [max]\r\n"))
		return
	}
	lo, err1 := strconv.ParseUint(args[0], 10, 64)
	hi, err2 := strconv.ParseUint(args[1], 10, 64)
	if err1 != nil || err2 != nil {
		cs.reply([]byte("-ERR SCAN bounds must be uint64\r\n"))
		return
	}
	max := cs.srv.cfg.MaxScan
	if len(args) == 3 {
		m, err := strconv.Atoi(args[2])
		if err != nil || m < 0 {
			cs.reply([]byte("-ERR SCAN max must be a non-negative int\r\n"))
			return
		}
		if m < max {
			max = m
		}
	}
	cs.awaitWrites()
	items := cs.scanBuf[:0]
	if max > 0 {
		err := cs.sess.Scan(lo, hi, func(k, v uint64) bool {
			items = append(items, scanKV{k, v})
			return len(items) < max
		})
		if err != nil {
			cs.scanBuf = items
			cs.reply([]byte("-ERR " + err.Error() + "\r\n"))
			return
		}
	}
	cs.scanBuf = items
	buf := appendArrayHeader(nil, len(items))
	for _, it := range items {
		buf = strconv.AppendUint(buf, it.k, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, it.v, 10)
		buf = append(buf, '\r', '\n')
	}
	cs.reply(buf)
}

func (cs *connState) execMGet(args []string) {
	if len(args) == 0 {
		cs.reply([]byte("-ERR usage: MGET key...\r\n"))
		return
	}
	keys := cs.keys[:0]
	for _, a := range args {
		k, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			cs.reply([]byte("-ERR MGET keys must be uint64\r\n"))
			return
		}
		keys = append(keys, k)
	}
	cs.keys = keys
	cs.awaitWrites()
	cs.res = cs.sess.MultiGet(keys, cs.res)
	buf := appendArrayHeader(nil, len(keys))
	for _, r := range cs.res {
		buf = appendValue(buf, r.Value, r.OK)
	}
	cs.reply(buf)
}

func (cs *connState) statsReply() []byte {
	st := cs.srv.st.Stats()
	bs := cs.srv.b.Stats()
	stats := []struct {
		name string
		v    uint64
	}{
		{"ops", st.Ops},
		{"reads", st.Reads},
		{"writes", st.Writes},
		{"flushes", st.Flushes},
		{"flushes_elided", st.FlushesElided},
		{"fences", st.Fences},
		{"batch_ops", bs.Ops},
		{"batch_flushes", bs.Flushes},
		{"batch_groups", bs.Groups},
	}
	buf := appendArrayHeader(nil, len(stats))
	for _, s := range stats {
		buf = append(buf, s.name...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, s.v, 10)
		buf = append(buf, '\r', '\n')
	}
	return buf
}

// parse1 and parse2 parse fixed uint64 argument lists, replying with a
// usage error on mismatch.
func parse1(cs *connState, args []string, usage string) (uint64, bool) {
	if len(args) != 1 {
		cs.reply([]byte("-ERR usage: " + usage + "\r\n"))
		return 0, false
	}
	k, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		cs.reply([]byte("-ERR arguments must be uint64\r\n"))
		return 0, false
	}
	return k, true
}

func parse2(cs *connState, args []string, usage string) (uint64, uint64, bool) {
	if len(args) != 2 {
		cs.reply([]byte("-ERR usage: " + usage + "\r\n"))
		return 0, 0, false
	}
	k, err1 := strconv.ParseUint(args[0], 10, 64)
	v, err2 := strconv.ParseUint(args[1], 10, 64)
	if err1 != nil || err2 != nil {
		cs.reply([]byte("-ERR arguments must be uint64\r\n"))
		return 0, 0, false
	}
	return k, v, true
}

// splitFields splits a request line on single spaces, trimming the
// CR/LF terminator, into dst (reused scratch).
func splitFields(line []byte, dst []string) []string {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	start := -1
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ' ' {
			if start >= 0 {
				dst = append(dst, string(line[start:i]))
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	return dst
}

func appendValue(buf []byte, v uint64, ok bool) []byte {
	if !ok {
		return append(buf, '$', '-', '1', '\r', '\n')
	}
	buf = append(buf, '$')
	buf = strconv.AppendUint(buf, v, 10)
	return append(buf, '\r', '\n')
}

func appendBoolInt(res store.OpResult) []byte {
	if res.OK {
		return []byte(":1\r\n")
	}
	return []byte(":0\r\n")
}

func appendArrayHeader(buf []byte, n int) []byte {
	buf = append(buf, '*')
	buf = strconv.AppendInt(buf, int64(n), 10)
	return append(buf, '\r', '\n')
}

// connCount is a test hook: live connections.
func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

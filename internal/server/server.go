// Package server is the network front end of the durable store: a
// pipelined wire protocol over TCP or Unix sockets on top of store.Store,
// with the shard-affine group-commit pool (internal/batcher.Pool) at its
// core. Each pool worker owns one shard group's session and runs its own
// group-commit loop; a connection hands decoded writes to the owning
// worker through a bounded ring, so the commit fence durable
// linearizability demands before an acknowledgement is paid once per shard
// group per flush across all connections — the network-level analogue of
// shard.Session.Apply's per-batch amortization, without a central queue.
//
// # Protocols
//
// Two protocols share every listener, negotiated per connection by the
// first byte: a text protocol (RESP-lite) and a length-prefixed binary
// frame protocol. A first byte of 0x80 — never the start of a text
// command — selects binary; anything else is text.
//
// Text requests are single lines of space-separated decimal fields,
// terminated by LF (CRLF accepted). Keys and values are uint64:
//
//	PING                      -> +PONG
//	GET k                     -> $value | $-1
//	PUT k v                   -> +OK                 (atomic upsert)
//	INSERT k v                -> :1 | :0             (1 = inserted)
//	DEL k                     -> :1 | :0             (1 = deleted)
//	UPDATE k v                -> $newvalue | $-1     (set to v if present)
//	SCAN lo hi [max]          -> *n, then n lines "k v"
//	MGET k1 k2 ... kn         -> *n, then n lines $value | $-1
//	STATS                     -> *n, then n lines "name value"
//	QUIT                      -> +OK, connection closes
//
// Errors are "-ERR message". The binary protocol carries the same
// operation vocabulary in fixed-layout frames with no parsing or
// formatting of decimals — see binary.go for the exact layout.
//
// Clients of either protocol may pipeline: the server replies in request
// order, and a reply to a write is sent only after the commit fence
// covering it has landed (reply-after-fence; see DESIGN.md). Within one
// connection, a read observes every write the same connection issued
// before it, even when those writes landed on different pool workers.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/batcher"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/store"
)

// Config tunes a Server.
type Config struct {
	// MaxConns bounds concurrent connections (each holds a read session of
	// the store while open; default 64). Excess connections are refused
	// with an error reply.
	MaxConns int
	// Pipeline bounds the per-connection reply queue: a client may have at
	// most this many requests outstanding before the server stops reading
	// its socket (default 128).
	Pipeline int
	// Batch is the per-worker group-commit policy for writes.
	Batch batcher.Config
	// Workers is the shard-affine worker count (default: the store's shard
	// count; see batcher.PoolConfig.Workers).
	Workers int
	// Ring is each worker's bounded submission ring (default 1024; see
	// batcher.PoolConfig.Ring).
	Ring int
	// MaxScan caps SCAN reply sizes (default 4096 entries); the explicit
	// limit argument may lower it but not raise it.
	MaxScan int
	// IdleTimeout closes a connection that has started no new request for
	// this long (0 = no limit). The clock re-arms at each request frame, so
	// a slow pipeline of replies never trips it — only a client that has
	// gone quiet while holding a session slot.
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply write to the socket (0 = no limit): a
	// client that stops reading cannot pin a handler forever once its
	// kernel buffer fills.
	WriteTimeout time.Duration
	// WaitReplicas is the replication write quorum K: with K > 0 a write
	// is acknowledged only after K replicas confirmed its fence group
	// (replied ⇒ replicated; see internal/repl). 0 inherits the store's
	// configured quorum (store.Config.WaitReplicas), which defaults to
	// best-effort streaming.
	WaitReplicas int
	// WaitTimeout bounds a WAIT-mode write's wait for its replica quorum
	// before it fails with a typed quorum error (default 2s).
	WaitTimeout time.Duration
	// ReplLogGroups is the per-shard replication log retention in fence
	// groups (default 1024).
	ReplLogGroups int
}

// Server serves the store protocol. One Server may serve many listeners.
type Server struct {
	st   store.Store
	pool *batcher.Pool
	cfg  Config

	// prim is the replication primary hooked into the pool's commit
	// point. It always exists on a store-backed server — inactive it is a
	// cheap no-op sink — so attaching a replica or promoting never needs
	// to rewire the pool. readOnly latches replica mode: writes are
	// refused until PROMOTE clears it.
	prim     *repl.Primary
	readOnly atomic.Bool

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	sessions  chan store.Session
	created   int
	closed    bool
	replica   *repl.Replica // live replication link in replica mode

	handlers sync.WaitGroup
}

// New builds a server over st. The server owns one pool session per worker;
// read sessions are drawn from a pool of at most cfg.MaxConns. Callers must
// ensure the store was opened with MaxSessions ≥ MaxConns + Workers + 1.
func New(st store.Store, cfg Config) *Server {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 128
	}
	if cfg.MaxScan <= 0 {
		cfg.MaxScan = 4096
	}
	if cfg.WaitReplicas == 0 {
		cfg.WaitReplicas = st.Repl().WaitReplicas
	}
	prim := repl.NewPrimary(st, repl.PrimaryConfig{
		WaitReplicas: cfg.WaitReplicas,
		WaitTimeout:  cfg.WaitTimeout,
		LogGroups:    cfg.ReplLogGroups,
	})
	return &Server{
		st: st,
		pool: batcher.NewPool(st, batcher.PoolConfig{
			Workers:  cfg.Workers,
			Ring:     cfg.Ring,
			MaxBatch: cfg.Batch.MaxBatch,
			MaxDelay: cfg.Batch.MaxDelay,
			OnCommit: prim,
		}),
		cfg:       cfg,
		prim:      prim,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		sessions:  make(chan store.Session, cfg.MaxConns),
	}
}

// Primary exposes the replication primary (tests, stats).
func (s *Server) Primary() *repl.Primary { return s.prim }

// StartReplica switches the server into replica mode: writes are refused
// with a REPLICA error, and a background link tails primaryAddr's
// replication stream into the store (full snapshot on first attach, tail
// from the persisted watermark after a restart when watermarkPath is
// non-empty). Reads keep serving throughout — stale by at most the
// link's lag. Call before serving traffic; Promote ends replica mode.
func (s *Server) StartReplica(primaryAddr, watermarkPath string) error {
	r, err := repl.StartReplica(s.st, repl.ReplicaConfig{
		Primary:       primaryAddr,
		WatermarkPath: watermarkPath,
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.replica = r
	s.mu.Unlock()
	s.readOnly.Store(true)
	return nil
}

// Promote ends replica mode: the replication link closes (keeping every
// batch already applied), writes open up, and the server's own primary —
// which was wired into the commit point all along — takes over the
// replication stats source so new replicas may attach to the promoted
// server. Idempotent; a no-op on a server that is already a primary.
func (s *Server) Promote() {
	s.mu.Lock()
	r := s.replica
	s.replica = nil
	s.mu.Unlock()
	if r != nil {
		r.Close()
	}
	s.readOnly.Store(false)
	if src, ok := s.st.(interface{ SetReplSource(func() store.ReplStats) }); ok && s.prim != nil {
		src.SetReplSource(s.prim.Stats)
	}
}

// Pool exposes the group-commit stage (stats, tests).
func (s *Server) Pool() *batcher.Pool { return s.pool }

// CheckpointErr reports the first error an automatic size-threshold
// checkpoint returned (nil normally); callers surface it at shutdown.
func (s *Server) CheckpointErr() error { return s.pool.CheckpointErr() }

// Listen resolves an address of the form "unix:/path/to.sock",
// "tcp:host:port", or a bare "host:port" (TCP). A Unix socket file left
// behind by a dead server is detected — the bind fails with EADDRINUSE and
// nothing answers a probe connection — and removed before one retry, so a
// restart succeeds without a second live server ever being able to steal
// the address. The probe-remove-rebind sequence is serialized through a
// flock on a sidecar "<path>.lock" file, so two simultaneously restarting
// servers cannot unlink each other's fresh bind; the loser sees the
// winner answer its probe and fails with the original EADDRINUSE.
func Listen(addr string) (net.Listener, error) {
	network, address := SplitAddr(addr)
	ln, err := net.Listen(network, address)
	if err == nil || network != "unix" || !errors.Is(err, syscall.EADDRINUSE) {
		return ln, err
	}
	lock, lerr := os.OpenFile(address+".lock", os.O_CREATE|os.O_RDWR, 0o600)
	if lerr != nil {
		return nil, err
	}
	defer lock.Close() // Close drops the flock
	if syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) != nil {
		// Another process is mid-takeover: the address is theirs now.
		return nil, err
	}
	if c, derr := net.DialTimeout(network, address, 250*time.Millisecond); derr == nil {
		c.Close() // a live server answered: genuinely in use
		return nil, err
	} else if !errors.Is(derr, syscall.ECONNREFUSED) && !errors.Is(derr, os.ErrNotExist) {
		// Only a refused connection (or the file vanishing) proves the
		// owner is dead. Anything else — e.g. EAGAIN from a live server
		// whose accept backlog is full — must not cost it the socket.
		return nil, err
	}
	if rerr := os.Remove(address); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return nil, err
	}
	return net.Listen(network, address)
}

// SplitAddr splits "unix:/path" / "tcp:host:port" / "host:port" into
// (network, address).
func SplitAddr(addr string) (network, address string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", addr[len("unix:"):]
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", addr[len("tcp:"):]
	default:
		return "tcp", addr
	}
}

// ListenAndServe listens on addr (see Listen) and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := Listen(addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It returns nil after Close,
// or the accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.handlers.Done()
			s.handle(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection, waits for the
// handlers to drain, and flushes and stops the worker pool.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	replica := s.replica
	s.replica = nil
	s.mu.Unlock()
	if replica != nil {
		replica.Close()
	}
	if s.prim != nil {
		// Fail pending WAIT gates now, before waiting on the handlers:
		// their writer goroutines drain queued replies, and a gate held to
		// its full quorum timeout would stall shutdown for nothing.
		s.prim.Close()
	}
	s.handlers.Wait()
	s.pool.Close()
}

// getSession draws a read session from the pool, creating one if the pool
// has headroom.
func (s *Server) getSession() (store.Session, bool) {
	select {
	case sess := <-s.sessions:
		return sess, true
	default:
	}
	s.mu.Lock()
	if s.created < s.cfg.MaxConns {
		s.created++
		s.mu.Unlock()
		return s.st.NewSession(), true
	}
	s.mu.Unlock()
	// Pool exhausted and no free session: refuse rather than block, so a
	// connection flood cannot wedge the accept loop's handlers.
	return nil, false
}

func (s *Server) putSession(sess store.Session) { s.sessions <- sess }

// replyMode selects how a completed write renders into its reply buffer —
// an enum rather than a per-request closure, so a slot is reusable without
// allocating on the submit path.
type replyMode uint8

const (
	modeRaw   replyMode = iota // buf already rendered (reads, errors)
	modeOK                     // PUT: +OK / binTagOK
	modeBool                   // INSERT, DEL: :1 / :0 / binTagTrue / binTagFalse
	modeValue                  // UPDATE: $v / $-1 / binTagValue / binTagNil
)

// slot is one in-order reply. A connection owns Pipeline slots, recycled
// through the free channel; the writer goroutine sends buf once the ready
// token arrives. Write slots are completed by the pool (slot implements
// batcher.Completer); read replies send their own token synchronously.
type slot struct {
	cs    *connState
	ready chan struct{} // capacity 1: one token per completion
	buf   []byte
	mode  replyMode
	bin   bool
}

// Complete renders the committed write's result into the slot's reused
// buffer and releases the writer (reply-after-fence: the pool calls this
// only after the covering commit fence landed, or with an error when it
// never will).
func (sl *slot) Complete(res store.OpResult, err error) {
	buf := sl.buf[:0]
	switch {
	case err != nil:
		buf = appendErrReply(buf, sl.bin, wireErrMsg(err))
	case sl.mode == modeOK:
		buf = appendOKReply(buf, sl.bin)
	case sl.mode == modeBool:
		buf = appendBoolReply(buf, sl.bin, res.OK)
	default: // modeValue
		buf = appendValueReply(buf, sl.bin, res.Value, res.OK)
	}
	sl.buf = buf
	sl.ready <- struct{}{}
	sl.cs.writes.Done()
}

// wireErrMsg renders a completion error for the wire. Degraded-store
// refusals get a stable leading "DEGRADED" token so clients of either
// protocol can classify them without parsing the cause chain.
func wireErrMsg(err error) string {
	if errors.Is(err, batcher.ErrDegraded) {
		return "DEGRADED " + err.Error()
	}
	if errors.Is(err, repl.ErrQuorum) {
		// The write IS durable on the primary; only the replica quorum is
		// missing. A distinct token keeps that apart from DEGRADED, where
		// the write never became durable.
		return "WAIT " + err.Error()
	}
	return err.Error()
}

// handle runs one connection: a reader goroutine (this one) parses and
// dispatches requests, a writer goroutine sends completed replies in
// request order. The fixed slot set is the pipelining window and the
// backpressure: when a client floods requests faster than commits, the
// reader blocks acquiring a free slot and the socket fills.
func (s *Server) handle(c net.Conn) {
	defer c.Close()
	sess, ok := s.getSession()
	if !ok {
		// The refusal happens before protocol negotiation, so it is always
		// textual; a binary client sees the connection close on a bad frame.
		fmt.Fprintf(c, "-ERR max connections (%d) reached\r\n", s.cfg.MaxConns)
		return
	}
	defer s.putSession(sess)

	br := bufio.NewReaderSize(c, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	bin := first[0] == binMagic
	if bin {
		var magic [2]byte
		if _, err := io.ReadFull(br, magic[:]); err != nil || magic[1] != binVersion {
			fmt.Fprintf(c, "-ERR unsupported binary protocol version\r\n")
			return
		}
	}

	cs := newConnState(s, sess, s.cfg.Pipeline, bin)
	cs.conn = c
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		bw := bufio.NewWriterSize(c, 64<<10)
		wt := s.cfg.WriteTimeout
		for sl := range cs.order {
			<-sl.ready
			if wt > 0 {
				c.SetWriteDeadline(time.Now().Add(wt))
			}
			bw.Write(sl.buf)
			// Flush only when no further reply is queued: pipelined replies
			// coalesce into few syscalls.
			if len(cs.order) == 0 {
				bw.Flush()
			}
			cs.free <- sl
		}
		bw.Flush()
	}()
	// On exit: stop the reply stream, let the writer drain every reply —
	// including writes still waiting on their fence (a QUIT's +OK must reach
	// the wire) — then the deferred c.Close runs.
	drained := false
	drain := func() {
		close(cs.order)
		writerWG.Wait()
	}
	defer func() {
		if !drained {
			drain()
		}
	}()

	if bin {
		s.handleBin(br, cs)
		if cs.replPSync != nil {
			// The connection re-negotiated into a replication channel:
			// drain the reply stream first (every pending reply completed
			// and hit the wire), then hand the quiet socket to the
			// primary, which owns it until the link dies. The connection's
			// session serves the snapshot reads.
			drain()
			drained = true
			s.prim.ServeConn(c, br, cs.sess, cs.replPSync)
		}
		return
	}
	for {
		cs.armIdle()
		line, err := br.ReadSlice('\n')
		if err != nil {
			if errors.Is(err, bufio.ErrBufferFull) {
				cs.reply("-ERR request line too long\r\n")
			}
			return
		}
		if !cs.dispatch(line) {
			return
		}
	}
}

// connState is the per-connection request dispatcher.
type connState struct {
	srv  *Server
	sess store.Session
	conn net.Conn // deadline arming only; all IO goes through the buffers
	bin  bool
	// free recycles the connection's reply slots; order carries them to the
	// writer in request order. Together they bound the pipeline window.
	free  chan *slot
	order chan *slot
	// writes counts the connection's outstanding (submitted, not yet
	// committed) writes. Reads wait for it to drain: the pool acknowledges
	// writes per worker flush and per shard group, not in submission order,
	// so waiting on only the most recent write would let a read run while an
	// earlier write on another worker is still unexecuted. Add and Wait both
	// happen on the reader goroutine only (Done comes from slot.Complete on
	// a worker), which satisfies the WaitGroup reuse rule.
	writes sync.WaitGroup
	// scratch buffers reused across requests.
	fields  []string
	keys    []uint64
	res     []store.OpResult
	scanBuf []scanKV
	binBuf  []byte
	// replPSync, when set by dispatchBin, carries a PSYNC request payload
	// out of the request loop: the connection stops being a request
	// stream and is handed to the replication primary.
	replPSync []byte
}

func newConnState(s *Server, sess store.Session, pipeline int, bin bool) *connState {
	cs := &connState{
		srv:   s,
		sess:  sess,
		bin:   bin,
		free:  make(chan *slot, pipeline),
		order: make(chan *slot, pipeline),
	}
	for i := 0; i < pipeline; i++ {
		cs.free <- &slot{cs: cs, ready: make(chan struct{}, 1)}
	}
	return cs
}

// scanKV is one collected SCAN entry.
type scanKV struct{ k, v uint64 }

// armIdle re-arms the connection's idle deadline before waiting for the
// next request (no-op when Config.IdleTimeout is unset).
func (cs *connState) armIdle() {
	if d := cs.srv.cfg.IdleTimeout; d > 0 && cs.conn != nil {
		cs.conn.SetReadDeadline(time.Now().Add(d))
	}
}

// take acquires the next reply slot, blocking when the client already has
// a full pipeline window outstanding.
func (cs *connState) take() *slot {
	sl := <-cs.free
	sl.mode = modeRaw
	sl.bin = cs.bin
	return sl
}

// finish enqueues an already-rendered reply (its token is sent here).
func (cs *connState) finish(sl *slot) {
	sl.ready <- struct{}{}
	cs.order <- sl
}

// reply enqueues a fixed already-complete reply.
func (cs *connState) reply(msg string) {
	sl := cs.take()
	sl.buf = append(sl.buf[:0], msg...)
	cs.finish(sl)
}

// submitWrite enqueues a reply slot for op in request order and submits it
// to the pool; the slot renders the result per mode once the covering
// fence lands. The slot enters the order queue before Submit so replies
// cannot reorder, whatever worker the key routes to.
func (cs *connState) submitWrite(op store.Op, mode replyMode) {
	if cs.srv.readOnly.Load() {
		// Replica mode: the store's contents belong to the primary's
		// stream. The refusal names where writes go, like DEGRADED names
		// why they stopped.
		if cs.bin {
			cs.replyBinErr("REPLICA read-only: writes go to the primary")
		} else {
			cs.reply("-ERR REPLICA read-only: writes go to the primary\r\n")
		}
		return
	}
	sl := cs.take()
	sl.mode = mode
	cs.order <- sl
	cs.writes.Add(1)
	cs.srv.pool.Submit(op, sl)
}

// awaitWrites blocks until every write this connection has submitted has
// committed or failed (read-your-writes ordering). Waiting on all
// outstanding writes — not just the most recent — matters because the pool
// acknowledges writes per worker and per shard group, not in submission
// order.
func (cs *connState) awaitWrites() {
	cs.writes.Wait()
}

// dispatch parses and executes one text request line; false closes the
// connection.
func (cs *connState) dispatch(line []byte) bool {
	fields := splitFields(line, cs.fields[:0])
	cs.fields = fields
	if len(fields) == 0 {
		return true // blank line: ignore
	}
	cmd := fields[0]
	args := fields[1:]
	switch {
	case strings.EqualFold(cmd, "GET"):
		k, ok := parse1(cs, args, "GET key")
		if !ok {
			return true
		}
		cs.awaitWrites()
		v, found := cs.sess.Get(k)
		sl := cs.take()
		sl.buf = appendValue(sl.buf[:0], v, found)
		cs.finish(sl)
	case strings.EqualFold(cmd, "PUT"):
		k, v, ok := parse2(cs, args, "PUT key value")
		if !ok {
			return true
		}
		cs.submitWrite(store.Op{Kind: shard.OpPut, Key: k, Value: v}, modeOK)
	case strings.EqualFold(cmd, "INSERT"):
		k, v, ok := parse2(cs, args, "INSERT key value")
		if !ok {
			return true
		}
		cs.submitWrite(store.Op{Kind: shard.OpInsert, Key: k, Value: v}, modeBool)
	case strings.EqualFold(cmd, "DEL"):
		k, ok := parse1(cs, args, "DEL key")
		if !ok {
			return true
		}
		cs.submitWrite(store.Op{Kind: shard.OpDelete, Key: k}, modeBool)
	case strings.EqualFold(cmd, "UPDATE"):
		k, v, ok := parse2(cs, args, "UPDATE key value")
		if !ok {
			return true
		}
		cs.submitWrite(store.Op{Kind: shard.OpUpdate, Key: k, Value: v}, modeValue)
	case strings.EqualFold(cmd, "SCAN"):
		cs.execScan(args)
	case strings.EqualFold(cmd, "MGET"):
		cs.execMGet(args)
	case strings.EqualFold(cmd, "STATS"):
		cs.awaitWrites()
		sl := cs.take()
		sl.buf = cs.appendStats(sl.buf[:0])
		cs.finish(sl)
	case strings.EqualFold(cmd, "PROMOTE"):
		// Failover: turn a replica into a primary (idempotent; +OK on a
		// server that already is one). Reads served before the reply saw
		// the pre-promotion state; writes accepted after it are the new
		// primary's own.
		cs.awaitWrites()
		cs.srv.Promote()
		cs.reply("+OK\r\n")
	case strings.EqualFold(cmd, "PING"):
		cs.reply("+PONG\r\n")
	case strings.EqualFold(cmd, "QUIT"):
		cs.reply("+OK\r\n")
		return false
	default:
		cs.reply("-ERR unknown command '" + cmd + "'\r\n")
	}
	return true
}

func (cs *connState) execScan(args []string) {
	if len(args) < 2 || len(args) > 3 {
		cs.reply("-ERR usage: SCAN lo hi [max]\r\n")
		return
	}
	lo, err1 := strconv.ParseUint(args[0], 10, 64)
	hi, err2 := strconv.ParseUint(args[1], 10, 64)
	if err1 != nil || err2 != nil {
		cs.reply("-ERR SCAN bounds must be uint64\r\n")
		return
	}
	max := cs.srv.cfg.MaxScan
	if len(args) == 3 {
		m, err := strconv.Atoi(args[2])
		if err != nil || m < 0 {
			cs.reply("-ERR SCAN max must be a non-negative int\r\n")
			return
		}
		if m < max {
			max = m
		}
	}
	items, err := cs.collectScan(lo, hi, max)
	if err != nil {
		cs.reply("-ERR " + err.Error() + "\r\n")
		return
	}
	sl := cs.take()
	buf := appendArrayHeader(sl.buf[:0], len(items))
	for _, it := range items {
		buf = strconv.AppendUint(buf, it.k, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, it.v, 10)
		buf = append(buf, '\r', '\n')
	}
	sl.buf = buf
	cs.finish(sl)
}

// collectScan waits for read-your-writes and gathers up to max entries of
// [lo, hi] into the reused scan scratch (shared by both protocols).
func (cs *connState) collectScan(lo, hi uint64, max int) ([]scanKV, error) {
	cs.awaitWrites()
	items := cs.scanBuf[:0]
	if max > 0 {
		err := cs.sess.Scan(lo, hi, func(k, v uint64) bool {
			items = append(items, scanKV{k, v})
			return len(items) < max
		})
		if err != nil {
			cs.scanBuf = items
			return nil, err
		}
	}
	cs.scanBuf = items
	return items, nil
}

func (cs *connState) execMGet(args []string) {
	if len(args) == 0 {
		cs.reply("-ERR usage: MGET key...\r\n")
		return
	}
	keys := cs.keys[:0]
	for _, a := range args {
		k, err := strconv.ParseUint(a, 10, 64)
		if err != nil {
			cs.reply("-ERR MGET keys must be uint64\r\n")
			return
		}
		keys = append(keys, k)
	}
	cs.keys = keys
	cs.awaitWrites()
	cs.res = cs.sess.MultiGet(keys, cs.res)
	sl := cs.take()
	buf := appendArrayHeader(sl.buf[:0], len(keys))
	for _, r := range cs.res {
		buf = appendValue(buf, r.Value, r.OK)
	}
	sl.buf = buf
	cs.finish(sl)
}

// statRow is one STATS counter, rendered by either protocol.
type statRow struct {
	name string
	v    uint64
}

// statRows gathers the server's counters, including the replication view
// (repl_* rows are live: on a primary they reflect attached replicas and
// lag, on a replica the applied stream position).
func (cs *connState) statRows() []statRow {
	st := cs.srv.st.Stats()
	bs := cs.srv.pool.Stats()
	rs := cs.srv.st.Repl()
	return []statRow{
		{"ops", st.Ops},
		{"reads", st.Reads},
		{"writes", st.Writes},
		{"flushes", st.Flushes},
		{"flushes_elided", st.FlushesElided},
		{"fences", st.Fences},
		{"batch_ops", bs.Ops},
		{"batch_flushes", bs.Flushes},
		{"batch_groups", bs.Groups},
		{"pool_workers", uint64(cs.srv.pool.Workers())},
		{"degraded", degraded01(cs.srv)},
		{"repl_role", uint64(rs.Role)},
		{"repl_replicas", uint64(rs.Replicas)},
		{"repl_wait_k", uint64(rs.WaitReplicas)},
		{"repl_lag_groups", rs.MaxLagGroups},
		{"repl_lag_bytes", rs.MaxLagBytes},
		{"repl_last_ack", rs.LastAckSeq},
		{"repl_applied_groups", rs.AppliedGroups},
		{"repl_applied_ops", rs.AppliedOps},
	}
}

func (cs *connState) appendStats(buf []byte) []byte {
	stats := cs.statRows()
	buf = appendArrayHeader(buf, len(stats))
	for _, s := range stats {
		buf = append(buf, s.name...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, s.v, 10)
		buf = append(buf, '\r', '\n')
	}
	return buf
}

// degraded01 renders the degraded state as a stats value: 1 once the
// store's durable backend (or the pool watching it) has latched a disk
// failure, 0 while healthy.
func degraded01(s *Server) uint64 {
	if s.DegradedErr() != nil {
		return 1
	}
	return 0
}

// DegradedErr reports the store's sticky durable damage as seen through
// this server (nil while healthy); nvserver checks it at shutdown to exit
// nonzero after a degraded run.
func (s *Server) DegradedErr() error {
	if err := s.pool.DegradedErr(); err != nil {
		return err
	}
	if s.st == nil { // component tests build a Server around a bare pool
		return nil
	}
	return s.st.DurableErr()
}

// parse1 and parse2 parse fixed uint64 argument lists, replying with a
// usage error on mismatch.
func parse1(cs *connState, args []string, usage string) (uint64, bool) {
	if len(args) != 1 {
		cs.reply("-ERR usage: " + usage + "\r\n")
		return 0, false
	}
	k, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		cs.reply("-ERR arguments must be uint64\r\n")
		return 0, false
	}
	return k, true
}

func parse2(cs *connState, args []string, usage string) (uint64, uint64, bool) {
	if len(args) != 2 {
		cs.reply("-ERR usage: " + usage + "\r\n")
		return 0, 0, false
	}
	k, err1 := strconv.ParseUint(args[0], 10, 64)
	v, err2 := strconv.ParseUint(args[1], 10, 64)
	if err1 != nil || err2 != nil {
		cs.reply("-ERR arguments must be uint64\r\n")
		return 0, 0, false
	}
	return k, v, true
}

// splitFields splits a request line on single spaces, trimming the
// CR/LF terminator, into dst (reused scratch).
func splitFields(line []byte, dst []string) []string {
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	start := -1
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ' ' {
			if start >= 0 {
				dst = append(dst, string(line[start:i]))
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	return dst
}

func appendValue(buf []byte, v uint64, ok bool) []byte {
	if !ok {
		return append(buf, '$', '-', '1', '\r', '\n')
	}
	buf = append(buf, '$')
	buf = strconv.AppendUint(buf, v, 10)
	return append(buf, '\r', '\n')
}

func appendArrayHeader(buf []byte, n int) []byte {
	buf = append(buf, '*')
	buf = strconv.AppendInt(buf, int64(n), 10)
	return append(buf, '\r', '\n')
}

// appendOKReply, appendBoolReply, appendValueReply, and appendErrReply
// render a completed write's reply for either protocol (slot.Complete).
func appendOKReply(buf []byte, bin bool) []byte {
	if bin {
		return appendBinHeader(buf, binTagOK, 0)
	}
	return append(buf, "+OK\r\n"...)
}

func appendBoolReply(buf []byte, bin, ok bool) []byte {
	if bin {
		if ok {
			return appendBinHeader(buf, binTagTrue, 0)
		}
		return appendBinHeader(buf, binTagFalse, 0)
	}
	if ok {
		return append(buf, ":1\r\n"...)
	}
	return append(buf, ":0\r\n"...)
}

func appendValueReply(buf []byte, bin bool, v uint64, ok bool) []byte {
	if bin {
		return appendBinValue(buf, v, ok)
	}
	return appendValue(buf, v, ok)
}

func appendErrReply(buf []byte, bin bool, msg string) []byte {
	if bin {
		return appendBinErr(buf, msg)
	}
	buf = append(buf, "-ERR "...)
	buf = append(buf, msg...)
	return append(buf, '\r', '\n')
}

// connCount is a test hook: live connections.
func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

package server

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/batcher"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/store"
)

// The shard package pins Session.Get at zero allocations; these tests
// extend that guarantee up through the serving path: binary frame decode,
// shard-affine ring submission, group commit, and reply rendering into the
// connection's reusable slot. AllocsPerRun counts mallocs process-wide, so
// the pool worker goroutines are covered too — a closure or slice born per
// flush anywhere in the path fails the test.

// allocHarness builds a server and a binary connState wired straight to the
// dispatch layer (no socket: the network write is the kernel's job, the
// allocation story ends at the rendered slot buffer).
func allocHarness(t *testing.T) (*connState, func()) {
	t.Helper()
	st, err := store.Open(store.Config{
		Kind: core.KindHash, Policy: persist.NVTraverse{}, Profile: pmem.ProfileZero,
		Shards: 4, SizeHint: 1 << 12, MaxSessions: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny MaxDelay so single-op batches flush immediately: each measured
	// iteration spans a complete submit → fence → complete round trip.
	srv := New(st, Config{
		MaxConns: 2,
		Batch:    batcher.Config{MaxBatch: 4, MaxDelay: time.Microsecond},
	})
	sess := st.NewSession()
	cs := newConnState(srv, sess, 8, true)
	for k := uint64(1); k <= 512; k++ {
		sess.Insert(k, k)
	}
	return cs, func() { srv.Close() }
}

// roundTrip pushes one decoded binary request through dispatch and drains
// its reply slot, asserting the reply tag.
func roundTrip(t *testing.T, cs *connState, op byte, payload []byte, wantTag byte) {
	cs.dispatchBin(op, payload)
	sl := <-cs.order
	<-sl.ready
	if len(sl.buf) < 5 || sl.buf[4] != wantTag {
		t.Fatalf("reply % x, want tag %d", sl.buf, wantTag)
	}
	cs.free <- sl
}

// TestBinaryWritePathAllocs: PUT to an existing key — decode, submit to the
// key's worker ring, group commit, OK frame — at zero allocations per op.
func TestBinaryWritePathAllocs(t *testing.T) {
	cs, stop := allocHarness(t)
	defer stop()
	payload := make([]byte, 16)
	put := func(k uint64) {
		binary.LittleEndian.PutUint64(payload, k)
		binary.LittleEndian.PutUint64(payload[8:], k*7)
		roundTrip(t, cs, binOpPut, payload, binTagOK)
	}
	for i := uint64(1); i <= 128; i++ { // warm worker scratch and slot buffers
		put(i%512 + 1)
	}
	if avg := testing.AllocsPerRun(200, func() { put(137) }); avg != 0 {
		t.Errorf("binary PUT path: %v allocs per op, want 0", avg)
	}
}

// TestBinaryReadPathAllocs: GET — await outstanding writes, decode, engine
// lookup, VALUE/NIL frame — at zero allocations per op, hit and miss.
func TestBinaryReadPathAllocs(t *testing.T) {
	cs, stop := allocHarness(t)
	defer stop()
	payload := make([]byte, 8)
	get := func(k uint64, wantTag byte) {
		binary.LittleEndian.PutUint64(payload, k)
		roundTrip(t, cs, binOpGet, payload, wantTag)
	}
	for i := uint64(1); i <= 64; i++ { // warm up
		get(i, binTagValue)
	}
	if avg := testing.AllocsPerRun(200, func() {
		get(321, binTagValue)
		get(100021, binTagNil) // miss path must be clean too
	}); avg != 0 {
		t.Errorf("binary GET path: %v allocs per 2 gets, want 0", avg)
	}
}

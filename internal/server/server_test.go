package server

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/batcher"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/store"
)

// startServer spins up a server over a fresh store on a Unix socket in a
// test temp dir and tears both down with the test.
func startServer(t *testing.T, kind core.Kind, shards int, scfg Config) (string, *Server, store.Store) {
	t.Helper()
	if scfg.MaxConns == 0 {
		scfg.MaxConns = 8
	}
	st, err := store.Open(store.Config{
		Kind: kind, Policy: persist.NVTraverse{}, Profile: pmem.ProfileZero,
		Shards: shards, SizeHint: 1 << 12, MaxSessions: scfg.MaxConns + 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := "unix:" + filepath.Join(t.TempDir(), "nv.sock")
	srv := New(st, scfg)
	ln, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return addr, srv, st
}

// TestRoundTrips exercises every command synchronously over a Unix socket.
func TestRoundTrips(t *testing.T) {
	addr, _, _ := startServer(t, core.KindSkiplist, 4, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(7, 70); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(7); err != nil || !ok || v != 70 {
		t.Fatalf("get: %d %v %v", v, ok, err)
	}
	if _, ok, err := cl.Get(8); err != nil || ok {
		t.Fatalf("missing get: %v %v", ok, err)
	}
	if ins, err := cl.Insert(8, 80); err != nil || !ins {
		t.Fatalf("insert: %v %v", ins, err)
	}
	if ins, err := cl.Insert(8, 81); err != nil || ins {
		t.Fatalf("duplicate insert: %v %v", ins, err)
	}
	if v, ok, err := cl.Update(8, 88); err != nil || !ok || v != 88 {
		t.Fatalf("update: %d %v %v", v, ok, err)
	}
	if _, ok, err := cl.Update(9, 99); err != nil || ok {
		t.Fatalf("update missing: %v %v", ok, err)
	}
	keys, vals, err := cl.Scan(1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != 7 || keys[1] != 8 || vals[1] != 88 {
		t.Fatalf("scan: %v %v", keys, vals)
	}
	// An explicit zero cap returns an empty scan, not one element.
	if keys, _, err := cl.Scan(1, 100, 0); err != nil || len(keys) != 0 {
		t.Fatalf("scan max=0: %v %v", keys, err)
	}
	if del, err := cl.Del(7); err != nil || !del {
		t.Fatalf("del: %v %v", del, err)
	}
	if del, err := cl.Del(7); err != nil || del {
		t.Fatalf("double del: %v %v", del, err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["batch_ops"] == 0 || stats["fences"] == 0 {
		t.Fatalf("stats missing activity: %v", stats)
	}
	if err := cl.Quit(); err != nil {
		t.Fatal(err)
	}
}

// TestTCP round-trips over a TCP listener (the loopback path).
func TestTCP(t *testing.T) {
	st, err := store.Open(store.Config{
		Kind: core.KindHash, Profile: pmem.ProfileZero, SizeHint: 1 << 10, MaxSessions: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{MaxConns: 4})
	ln, err := Listen("tcp:127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(1); err != nil || !ok || v != 2 {
		t.Fatalf("get over tcp: %d %v %v", v, ok, err)
	}
}

// TestPipelining sends a burst of commands without reading, then checks
// every reply arrives in order — including the read-your-writes pair where
// a pipelined GET follows the PUT of the same key.
func TestPipelining(t *testing.T) {
	addr, srv, _ := startServer(t, core.KindHash, 4, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Phase 1: a pure write burst. The pipeline keeps the batcher fed, so
	// the burst must coalesce into far fewer flushes than writes.
	const n = 200
	for i := uint64(1); i <= n; i++ {
		if err := cl.SendPut(i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= n; i++ {
		put, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if put.Status != "OK" {
			t.Fatalf("put %d: %+v", i, put)
		}
	}
	bs := srv.Pool().Stats()
	if bs.Ops != n {
		t.Fatalf("pool saw %d ops, want %d", bs.Ops, n)
	}
	if bs.Flushes >= n/2 {
		t.Fatalf("pipelined writes barely batched: %d flushes for %d writes", bs.Flushes, n)
	}

	// Phase 2: alternating PUT/GET pairs pipelined in one burst. Each GET
	// must observe the connection's preceding PUT (read-your-writes), which
	// forces the server to hold the GET until the PUT's fence lands — the
	// ordering cost of reading your own pipelined writes.
	for i := uint64(1); i <= 50; i++ {
		if err := cl.SendPut(i, i*7); err != nil {
			t.Fatal(err)
		}
		if err := cl.SendGet(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if put, err := cl.ReadReply(); err != nil || put.Status != "OK" {
			t.Fatalf("put %d: %+v %v", i, put, err)
		}
		get, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if !get.Found || get.Value != i*7 {
			t.Fatalf("pipelined get %d after put: %+v (read-your-writes broken)", i, get)
		}
	}
}

// TestReadYourWritesAcrossShards regression-tests the ordering bug where a
// read waited only on the connection's most recent write: within one
// batcher flush, shard groups are acknowledged in shard-index order, not
// submission order, so an earlier write to a later-committing shard could
// still be unexecuted when the latest write's fence landed. Each round
// pipelines PUT a, a filler burst spread across every shard, PUT b, GET a
// into a single flush; the GET must observe a no matter which shards a and
// b hash to. The NVRAM profile stretches each flush's execution (spin cost
// per op), widening the window between one shard group's acknowledgement
// and a later group's execution so the old code fails reliably.
func TestReadYourWritesAcrossShards(t *testing.T) {
	st, err := store.Open(store.Config{
		Kind: core.KindHash, Policy: persist.NVTraverse{}, Profile: pmem.ProfileNVRAM,
		Shards: 8, SizeHint: 1 << 16, MaxSessions: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := "unix:" + filepath.Join(t.TempDir(), "nv.sock")
	srv := New(st, Config{
		MaxConns: 8,
		Pipeline: 4096,
		Batch:    batcher.Config{MaxBatch: 8192, MaxDelay: 2 * time.Millisecond},
	})
	ln, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const rounds, filler = 40, 2000
	next := uint64(1)
	for r := 0; r < rounds; r++ {
		a := next
		next++
		if err := cl.SendPut(a, a*3); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < filler; i++ {
			k := next
			next++
			if err := cl.SendPut(k, k); err != nil {
				t.Fatal(err)
			}
		}
		b := next
		next++
		if err := cl.SendPut(b, b*3); err != nil {
			t.Fatal(err)
		}
		if err := cl.SendGet(a); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < filler+2; i++ {
			put, err := cl.ReadReply()
			if err != nil {
				t.Fatal(err)
			}
			if put.Status != "OK" {
				t.Fatalf("round %d put %d: %+v", r, i, put)
			}
		}
		get, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if !get.Found || get.Value != a*3 {
			t.Fatalf("round %d: pipelined GET %d = %+v — stale read, earlier write to a later-committing shard not awaited", r, a, get)
		}
	}
}

// inversionSession is a stub AsyncSession whose ApplyCommitted applies and
// acknowledges a batch's operations one at a time in REVERSE submission
// order, pausing between acknowledgements — a deterministic stand-in for
// the shard engine acknowledging one flush's shard groups in shard-index
// order while later groups are still unexecuted.
type inversionSession struct {
	mu    sync.Mutex
	m     map[uint64]uint64
	pause time.Duration
}

func (s *inversionSession) Get(key uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}
func (s *inversionSession) Put(key, value uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = value
}
func (s *inversionSession) Insert(uint64, uint64) bool                        { return false }
func (s *inversionSession) Delete(uint64) bool                                { return false }
func (s *inversionSession) Update(uint64, func(uint64) uint64) (uint64, bool) { return 0, false }
func (s *inversionSession) GetOrInsert(uint64, uint64) (uint64, bool)         { return 0, false }
func (s *inversionSession) Scan(uint64, uint64, func(uint64, uint64) bool) error {
	return nil
}
func (s *inversionSession) Apply(ops []store.Op, dst []store.OpResult) []store.OpResult {
	return s.ApplyCommitted(ops, dst, nil)
}
func (s *inversionSession) MultiGet([]uint64, []store.OpResult) []store.OpResult { return nil }
func (s *inversionSession) Rand() uint64                                         { return 0 }

func (s *inversionSession) ApplyCommitted(ops []store.Op, dst []store.OpResult, committed func(idxs []int, err error)) []store.OpResult {
	if cap(dst) < len(ops) {
		dst = make([]store.OpResult, len(ops))
	}
	dst = dst[:len(ops)]
	for i := len(ops) - 1; i >= 0; i-- {
		s.Put(ops[i].Key, ops[i].Value)
		dst[i] = store.OpResult{Value: ops[i].Value, OK: true}
		if committed != nil {
			committed([]int{i}, nil)
		}
		if i > 0 {
			time.Sleep(s.pause)
		}
	}
	return dst
}

// drainReplies collects the next n rendered replies from a connState's
// order queue (component-level tests with no writer goroutine).
func drainReplies(cs *connState, n int) []string {
	out := make([]string, n)
	for i := range out {
		sl := <-cs.order
		<-sl.ready
		out[i] = string(sl.buf)
		cs.free <- sl
	}
	return out
}

// TestAwaitWritesWaitsForAllOutstanding regression-tests the read-your-
// writes bug deterministically: a connection pipelines PUT a, PUT b, GET a,
// and the store acknowledges b's write long before a's is even applied
// (inversionSession's reverse-order acks). A read that waited only on the
// connection's most recent write would run between the two
// acknowledgements and miss a; the server must hold the GET until every
// outstanding write has committed.
func TestAwaitWritesWaitsForAllOutstanding(t *testing.T) {
	sess := &inversionSession{m: make(map[uint64]uint64), pause: 100 * time.Millisecond}
	// MaxBatch 2 flushes exactly when both PUTs are pending; the long
	// MaxDelay keeps the first PUT from flushing alone.
	p := batcher.NewSessionPool(sess, batcher.PoolConfig{MaxBatch: 2, MaxDelay: time.Hour})
	defer p.Close()
	srv := &Server{pool: p, cfg: Config{MaxScan: 16}}
	cs := newConnState(srv, sess, 16, false)

	cs.dispatch([]byte("PUT 7 21\n"))
	cs.dispatch([]byte("PUT 8 24\n"))
	cs.dispatch([]byte("GET 7\n")) // blocks until read-your-writes holds

	want := []string{"+OK\r\n", "+OK\r\n", "$21\r\n"}
	for i, got := range drainReplies(cs, len(want)) {
		if got != want[i] {
			t.Fatalf("reply %d = %q, want %q (stale read: GET ran before the earlier write was applied)", i, got, want[i])
		}
	}
}

// slowSession delays every batch before applying it — a deterministic
// stand-in for a pool worker whose shard group commits late.
type slowSession struct {
	inversionSession
	delay time.Duration
}

func (s *slowSession) Apply(ops []store.Op, dst []store.OpResult) []store.OpResult {
	return s.ApplyCommitted(ops, dst, nil)
}

func (s *slowSession) ApplyCommitted(ops []store.Op, dst []store.OpResult, committed func(idxs []int, err error)) []store.OpResult {
	time.Sleep(s.delay)
	return s.inversionSession.ApplyCommitted(ops, dst, committed)
}

// TestAwaitWritesAcrossWorkers is the shard-affine version of the same
// ordering hazard: two writes route to two different pool workers, the
// second worker acknowledges long before the first has applied anything,
// and a pipelined read of the first key must still observe it. The
// connection's WaitGroup over all outstanding writes is worker-agnostic —
// this pins exactly that (run under -race as part of the race target).
func TestAwaitWritesAcrossWorkers(t *testing.T) {
	slow := &slowSession{
		inversionSession: inversionSession{m: make(map[uint64]uint64)},
		delay:            100 * time.Millisecond,
	}
	fast := &inversionSession{m: make(map[uint64]uint64)}
	p := batcher.NewSessionsPool(
		[]store.Session{slow, fast},
		func(key uint64) int { return int(key % 2) },
		batcher.PoolConfig{MaxBatch: 1, MaxDelay: time.Microsecond},
	)
	defer p.Close()
	srv := &Server{pool: p, cfg: Config{MaxScan: 16}}
	// The read session is the slow worker's: a stale read of key 2 would
	// observe the map before the delayed apply.
	cs := newConnState(srv, slow, 16, false)

	cs.dispatch([]byte("PUT 2 42\n")) // worker 0 (slow)
	cs.dispatch([]byte("PUT 3 9\n"))  // worker 1 (fast, acks first)
	cs.dispatch([]byte("GET 2\n"))    // must wait for worker 0 too

	want := []string{"+OK\r\n", "+OK\r\n", "$42\r\n"}
	for i, got := range drainReplies(cs, len(want)) {
		if got != want[i] {
			t.Fatalf("reply %d = %q, want %q (read ran before the slow worker's write committed)", i, got, want[i])
		}
	}
}

// TestListenSocketOwnership pins the Unix socket rules: Listen must not
// steal a live server's socket, and must replace a socket file left behind
// by a dead server (bind fails, nothing answers a probe).
func TestListenSocketOwnership(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nv.sock")
	addr := "unix:" + path

	ln, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	if second, err := Listen(addr); err == nil {
		second.Close()
		t.Fatal("second Listen stole a live server's socket")
	}
	// The failed attempt must not have unlinked the live socket.
	if c, err := net.Dial("unix", path); err != nil {
		t.Fatalf("live socket unusable after failed Listen: %v", err)
	} else {
		c.Close()
	}

	// Leave a stale socket file behind: keep the file on close, so the
	// path exists with no listener — the dead-server case.
	ln.(*net.UnixListener).SetUnlinkOnClose(false)
	ln.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("stale socket file not left in place: %v", err)
	}
	ln2, err := Listen(addr)
	if err != nil {
		t.Fatalf("Listen over a stale socket: %v", err)
	}
	ln2.Close()
}

// TestErrorReplies pins the protocol's error surface; the connection stays
// usable after each error.
func TestErrorReplies(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 0, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, bad := range []string{
		"BOGUS 1 2",
		"GET",
		"GET notanumber",
		"PUT 1",
		"SCAN 1",
		"SCAN 1 2 -3",
		"MGET",
		"SCAN 1 100 5", // hash kind: unordered
	} {
		if err := cl.Send(bad); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		rep, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.IsErr() {
			t.Fatalf("%q: expected error reply, got %+v", bad, rep)
		}
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unusable after error replies: %v", err)
	}
}

// TestMGet covers the batch read path.
func TestMGet(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 4, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := uint64(1); i <= 5; i++ {
		if err := cl.Put(i, i+100); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Send("MGET 1 3 9 5"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"$101", "$103", "$-1", "$105"}
	if len(rep.Array) != len(want) {
		t.Fatalf("mget: %v", rep.Array)
	}
	for i := range want {
		if rep.Array[i] != want[i] {
			t.Fatalf("mget[%d] = %q, want %q", i, rep.Array[i], want[i])
		}
	}
}

// TestMaxConns: connections beyond the session pool get a clean error.
func TestMaxConns(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 0, Config{MaxConns: 2})
	var keep []*Client
	defer func() {
		for _, c := range keep {
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		keep = append(keep, cl)
		if err := cl.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	over, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	rep, err := over.ReadReply()
	if err != nil || !rep.IsErr() || !strings.Contains(rep.Err, "max connections") {
		t.Fatalf("over-limit connection: %+v %v", rep, err)
	}
}

// TestConcurrentConnections drives many writers through separate
// connections and checks the union of writes.
func TestConcurrentConnections(t *testing.T) {
	addr, srv, st := startServer(t, core.KindHash, 4, Config{MaxConns: 8})
	const conns, per = 6, 150
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < per; i++ {
				k := uint64(c*per + i + 1)
				if err := cl.Put(k, k*3); err != nil {
					t.Errorf("put %d: %v", k, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	sess := st.NewSession()
	for k := uint64(1); k <= conns*per; k++ {
		if v, ok := sess.Get(k); !ok || v != k*3 {
			t.Fatalf("key %d: %d %v", k, v, ok)
		}
	}
	if bs := srv.Pool().Stats(); bs.Ops != conns*per {
		t.Fatalf("pool ops %d, want %d", bs.Ops, conns*per)
	}
}

// TestLoadGenerator runs the embedded load generator end to end on every
// point workload and checks zero protocol errors.
func TestLoadGenerator(t *testing.T) {
	addr, _, _ := startServer(t, core.KindSkiplist, 4, Config{MaxConns: 8})
	for _, wl := range []string{"A", "C", "E", "U"} {
		res, err := RunLoad(LoadConfig{
			Addr: addr, Conns: 2, Pipeline: 8, Ops: 2000,
			Workload: wl, Range: 1 << 10, Prefill: wl == "E",
		})
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if res.Errors > 0 {
			t.Fatalf("%s: %d protocol errors", wl, res.Errors)
		}
		if res.Ops < 2000-2*8 || res.Ops > 2000 {
			t.Fatalf("%s: ops %d, want ~2000", wl, res.Ops)
		}
		if res.Lat.Count() == 0 || res.Lat.Quantile(0.5) <= 0 {
			t.Fatalf("%s: no latency samples: %s", wl, res.Lat.Summary())
		}
	}
}

// TestLoadGeneratorOpenLoop: open-loop runs (fixed-rate and Poisson, text
// and binary) issue on their schedule, complete every issued request, and
// report the achieved offered rate.
func TestLoadGeneratorOpenLoop(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 4, Config{MaxConns: 8})
	for _, tc := range []struct {
		name    string
		poisson bool
		binary  bool
	}{
		{"fixed-text", false, false},
		{"poisson-text", true, false},
		{"poisson-binary", true, true},
	} {
		res, err := RunLoad(LoadConfig{
			Addr: addr, Conns: 2, Pipeline: 8,
			Duration: 150 * time.Millisecond, Rate: 20000,
			Poisson: tc.poisson, Binary: tc.binary,
			Workload: "A", Range: 1 << 10,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Errors > 0 {
			t.Fatalf("%s: %d protocol errors", tc.name, res.Errors)
		}
		if res.Ops == 0 {
			t.Fatalf("%s: no ops completed", tc.name)
		}
		// Every scheduled request was answered: completed rate ≈ offered
		// rate (both counted over the same elapsed window).
		if res.Offered <= 0 {
			t.Fatalf("%s: no offered rate reported: %+v", tc.name, res)
		}
		if res.OpsPerSec < res.Offered*0.99 {
			t.Fatalf("%s: completed %.0f/s of %.0f/s offered — replies lost", tc.name, res.OpsPerSec, res.Offered)
		}
		if res.Lat.Count() == 0 || res.Lat.Quantile(0.5) <= 0 {
			t.Fatalf("%s: no latency samples: %s", tc.name, res.Lat.Summary())
		}
	}
}

// TestBenchRow: the self-contained server bench produces a well-formed
// bench.Result row with open-loop percentiles.
func TestBenchRow(t *testing.T) {
	res, err := Bench(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Mops <= 0 {
		t.Fatalf("empty bench result: %+v", res)
	}
	if res.Lat == nil || res.Lat.Count() == 0 {
		t.Fatal("bench result has no latency histogram")
	}
	if res.FencePerOp <= 0 {
		t.Fatalf("bench result has no fence accounting: %+v", res)
	}
	if res.Offered <= 0 {
		t.Fatalf("bench result percentiles are not from an open-loop pass: %+v", res)
	}
}

// TestServerSmokeScript is the server-smoke scenario in miniature: serve,
// load, verify, shut down cleanly. Used as the reference for the Makefile
// target.
func TestServerSmokeScript(t *testing.T) {
	addr, srv, _ := startServer(t, core.KindHash, 4, Config{MaxConns: 8})
	res, err := RunLoad(LoadConfig{Addr: addr, Conns: 4, Pipeline: 8, Ops: 4000, Range: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	srv.Close()
	if n := srv.connCount(); n != 0 {
		t.Fatalf("%d connections survive Close", n)
	}
	// Close is idempotent.
	srv.Close()
}

package server

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/store"
)

// startServer spins up a server over a fresh store on a Unix socket in a
// test temp dir and tears both down with the test.
func startServer(t *testing.T, kind core.Kind, shards int, scfg Config) (string, *Server, store.Store) {
	t.Helper()
	if scfg.MaxConns == 0 {
		scfg.MaxConns = 8
	}
	st, err := store.Open(store.Config{
		Kind: kind, Policy: persist.NVTraverse{}, Profile: pmem.ProfileZero,
		Shards: shards, SizeHint: 1 << 12, MaxSessions: scfg.MaxConns + 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := "unix:" + filepath.Join(t.TempDir(), "nv.sock")
	srv := New(st, scfg)
	ln, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return addr, srv, st
}

// TestRoundTrips exercises every command synchronously over a Unix socket.
func TestRoundTrips(t *testing.T) {
	addr, _, _ := startServer(t, core.KindSkiplist, 4, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(7, 70); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(7); err != nil || !ok || v != 70 {
		t.Fatalf("get: %d %v %v", v, ok, err)
	}
	if _, ok, err := cl.Get(8); err != nil || ok {
		t.Fatalf("missing get: %v %v", ok, err)
	}
	if ins, err := cl.Insert(8, 80); err != nil || !ins {
		t.Fatalf("insert: %v %v", ins, err)
	}
	if ins, err := cl.Insert(8, 81); err != nil || ins {
		t.Fatalf("duplicate insert: %v %v", ins, err)
	}
	if v, ok, err := cl.Update(8, 88); err != nil || !ok || v != 88 {
		t.Fatalf("update: %d %v %v", v, ok, err)
	}
	if _, ok, err := cl.Update(9, 99); err != nil || ok {
		t.Fatalf("update missing: %v %v", ok, err)
	}
	keys, vals, err := cl.Scan(1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != 7 || keys[1] != 8 || vals[1] != 88 {
		t.Fatalf("scan: %v %v", keys, vals)
	}
	// An explicit zero cap returns an empty scan, not one element.
	if keys, _, err := cl.Scan(1, 100, 0); err != nil || len(keys) != 0 {
		t.Fatalf("scan max=0: %v %v", keys, err)
	}
	if del, err := cl.Del(7); err != nil || !del {
		t.Fatalf("del: %v %v", del, err)
	}
	if del, err := cl.Del(7); err != nil || del {
		t.Fatalf("double del: %v %v", del, err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["batch_ops"] == 0 || stats["fences"] == 0 {
		t.Fatalf("stats missing activity: %v", stats)
	}
	if err := cl.Quit(); err != nil {
		t.Fatal(err)
	}
}

// TestTCP round-trips over a TCP listener (the loopback path).
func TestTCP(t *testing.T) {
	st, err := store.Open(store.Config{
		Kind: core.KindHash, Profile: pmem.ProfileZero, SizeHint: 1 << 10, MaxSessions: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{MaxConns: 4})
	ln, err := Listen("tcp:127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-done
	}()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(1); err != nil || !ok || v != 2 {
		t.Fatalf("get over tcp: %d %v %v", v, ok, err)
	}
}

// TestPipelining sends a burst of commands without reading, then checks
// every reply arrives in order — including the read-your-writes pair where
// a pipelined GET follows the PUT of the same key.
func TestPipelining(t *testing.T) {
	addr, srv, _ := startServer(t, core.KindHash, 4, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Phase 1: a pure write burst. The pipeline keeps the batcher fed, so
	// the burst must coalesce into far fewer flushes than writes.
	const n = 200
	for i := uint64(1); i <= n; i++ {
		if err := cl.SendPut(i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= n; i++ {
		put, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if put.Status != "OK" {
			t.Fatalf("put %d: %+v", i, put)
		}
	}
	bs := srv.Batcher().Stats()
	if bs.Ops != n {
		t.Fatalf("batcher saw %d ops, want %d", bs.Ops, n)
	}
	if bs.Flushes >= n/2 {
		t.Fatalf("pipelined writes barely batched: %d flushes for %d writes", bs.Flushes, n)
	}

	// Phase 2: alternating PUT/GET pairs pipelined in one burst. Each GET
	// must observe the connection's preceding PUT (read-your-writes), which
	// forces the server to hold the GET until the PUT's fence lands — the
	// ordering cost of reading your own pipelined writes.
	for i := uint64(1); i <= 50; i++ {
		if err := cl.SendPut(i, i*7); err != nil {
			t.Fatal(err)
		}
		if err := cl.SendGet(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if put, err := cl.ReadReply(); err != nil || put.Status != "OK" {
			t.Fatalf("put %d: %+v %v", i, put, err)
		}
		get, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if !get.Found || get.Value != i*7 {
			t.Fatalf("pipelined get %d after put: %+v (read-your-writes broken)", i, get)
		}
	}
}

// TestErrorReplies pins the protocol's error surface; the connection stays
// usable after each error.
func TestErrorReplies(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 0, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, bad := range []string{
		"BOGUS 1 2",
		"GET",
		"GET notanumber",
		"PUT 1",
		"SCAN 1",
		"SCAN 1 2 -3",
		"MGET",
		"SCAN 1 100 5", // hash kind: unordered
	} {
		if err := cl.Send(bad); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		rep, err := cl.ReadReply()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.IsErr() {
			t.Fatalf("%q: expected error reply, got %+v", bad, rep)
		}
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unusable after error replies: %v", err)
	}
}

// TestMGet covers the batch read path.
func TestMGet(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 4, Config{})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := uint64(1); i <= 5; i++ {
		if err := cl.Put(i, i+100); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Send("MGET 1 3 9 5"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"$101", "$103", "$-1", "$105"}
	if len(rep.Array) != len(want) {
		t.Fatalf("mget: %v", rep.Array)
	}
	for i := range want {
		if rep.Array[i] != want[i] {
			t.Fatalf("mget[%d] = %q, want %q", i, rep.Array[i], want[i])
		}
	}
}

// TestMaxConns: connections beyond the session pool get a clean error.
func TestMaxConns(t *testing.T) {
	addr, _, _ := startServer(t, core.KindHash, 0, Config{MaxConns: 2})
	var keep []*Client
	defer func() {
		for _, c := range keep {
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		keep = append(keep, cl)
		if err := cl.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	over, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	rep, err := over.ReadReply()
	if err != nil || !rep.IsErr() || !strings.Contains(rep.Err, "max connections") {
		t.Fatalf("over-limit connection: %+v %v", rep, err)
	}
}

// TestConcurrentConnections drives many writers through separate
// connections and checks the union of writes.
func TestConcurrentConnections(t *testing.T) {
	addr, srv, st := startServer(t, core.KindHash, 4, Config{MaxConns: 8})
	const conns, per = 6, 150
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < per; i++ {
				k := uint64(c*per + i + 1)
				if err := cl.Put(k, k*3); err != nil {
					t.Errorf("put %d: %v", k, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	sess := st.NewSession()
	for k := uint64(1); k <= conns*per; k++ {
		if v, ok := sess.Get(k); !ok || v != k*3 {
			t.Fatalf("key %d: %d %v", k, v, ok)
		}
	}
	if bs := srv.Batcher().Stats(); bs.Ops != conns*per {
		t.Fatalf("batcher ops %d, want %d", bs.Ops, conns*per)
	}
}

// TestLoadGenerator runs the embedded load generator end to end on every
// point workload and checks zero protocol errors.
func TestLoadGenerator(t *testing.T) {
	addr, _, _ := startServer(t, core.KindSkiplist, 4, Config{MaxConns: 8})
	for _, wl := range []string{"A", "C", "E", "U"} {
		res, err := RunLoad(LoadConfig{
			Addr: addr, Conns: 2, Pipeline: 8, Ops: 2000,
			Workload: wl, Range: 1 << 10, Prefill: wl == "E",
		})
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if res.Errors > 0 {
			t.Fatalf("%s: %d protocol errors", wl, res.Errors)
		}
		if res.Ops < 2000-2*8 || res.Ops > 2000 {
			t.Fatalf("%s: ops %d, want ~2000", wl, res.Ops)
		}
		if res.Lat.Count() == 0 || res.Lat.Quantile(0.5) <= 0 {
			t.Fatalf("%s: no latency samples: %s", wl, res.Lat.Summary())
		}
	}
}

// TestBenchRow: the self-contained server bench produces a well-formed
// bench.Result row with populated percentiles.
func TestBenchRow(t *testing.T) {
	res, err := Bench(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Mops <= 0 {
		t.Fatalf("empty bench result: %+v", res)
	}
	if res.Lat == nil || res.Lat.Count() == 0 {
		t.Fatal("bench result has no latency histogram")
	}
	if res.FencePerOp <= 0 {
		t.Fatalf("bench result has no fence accounting: %+v", res)
	}
}

// TestServerSmokeScript is the server-smoke scenario in miniature: serve,
// load, verify, shut down cleanly. Used as the reference for the Makefile
// target.
func TestServerSmokeScript(t *testing.T) {
	addr, srv, _ := startServer(t, core.KindHash, 4, Config{MaxConns: 8})
	res, err := RunLoad(LoadConfig{Addr: addr, Conns: 4, Pipeline: 8, Ops: 4000, Range: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	srv.Close()
	if n := srv.connCount(); n != 0 {
		t.Fatalf("%d connections survive Close", n)
	}
	// Close is idempotent.
	srv.Close()
}

// The embedded load generator: clients driving the wire protocol with the
// YCSB key and operation distributions of internal/bench, measuring
// throughput and an HDR-style latency histogram per request. It exists so
// the server can be exercised and measured with the same workload
// vocabulary — and land in the same BenchDoc JSON schema — as the
// in-process harness.
//
// Two load modes:
//
//   - Closed loop (Rate == 0): each connection keeps Pipeline requests in
//     flight and issues the next the moment a reply frees a slot. This
//     measures capacity — the server sets the pace — but its latency
//     numbers suffer coordinated omission: when the server stalls, the
//     generator stops sending, so the stall is sampled once instead of
//     once per request that would have arrived.
//   - Open loop (Rate > 0): requests are scheduled on an arrival process
//     (fixed-rate or Poisson) that does not react to the server, and each
//     latency is measured from the request's *intended* send time. A
//     server stall makes every queued-behind-it request slow, which is
//     what a real client population would experience. This is the mode
//     tail percentiles are quoted from.
package server

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/store"
)

// LoadConfig configures RunLoad.
type LoadConfig struct {
	// Addr is the server address ("unix:/path", "tcp:host:port", "host:port").
	Addr string
	// Conns is the number of concurrent connections (default 4).
	Conns int
	// Pipeline is the number of requests each connection keeps in flight
	// (default 16; 1 = strict request/response).
	Pipeline int
	// Ops is the total operation budget across connections; 0 runs for
	// Duration instead.
	Ops uint64
	// Duration bounds the run when Ops is 0 (default 1s).
	Duration time.Duration
	// Workload is a YCSB workload letter (see bench.Workloads; default A).
	Workload string
	// Range is the key range (default 1<<16).
	Range uint64
	// Theta overrides the workload's Zipf skew when > 0.
	Theta float64
	// Prefill inserts every other key of [1, Range] before measuring.
	Prefill bool
	// Seed perturbs the per-connection RNGs.
	Seed int64
	// Rate, when > 0, switches to open-loop load: requests are scheduled
	// at Rate ops/sec across all connections regardless of how fast the
	// server answers, and latency is measured from each request's intended
	// send time (no coordinated omission).
	Rate float64
	// Poisson randomizes open-loop interarrival times (exponential with
	// mean 1/rate) instead of a fixed period. Ignored in closed loop.
	Poisson bool
	// Binary drives the length-prefixed binary frame protocol instead of
	// the text protocol.
	Binary bool
}

// LoadResult is one load run's outcome.
type LoadResult struct {
	Ops       uint64
	Errors    uint64
	Elapsed   time.Duration
	OpsPerSec float64
	// Offered is the achieved send rate of an open-loop run (0 in closed
	// loop). When it falls visibly below LoadConfig.Rate the generator
	// could not hold the schedule and the run is past saturation.
	Offered float64
	Lat     *bench.Histogram
}

// String renders the result for humans.
func (r LoadResult) String() string {
	if r.Offered > 0 {
		return fmt.Sprintf("%d ops in %v  %.0f ops/s (offered %.0f)  %d errors\n%s",
			r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec, r.Offered, r.Errors, r.Lat.Summary())
	}
	return fmt.Sprintf("%d ops in %v  %.0f ops/s  %d errors\n%s",
		r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec, r.Errors, r.Lat.Summary())
}

// RunLoad drives the server at cfg.Addr. Every connection runs the same
// closed-loop: keep Pipeline requests outstanding, read replies in order,
// and record client-perceived latency (send enqueue to reply) per request.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 16
	}
	if cfg.Range == 0 {
		cfg.Range = 1 << 16
	}
	if cfg.Workload == "" {
		cfg.Workload = "A"
	}
	if cfg.Ops == 0 && cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	wl, ok := bench.WorkloadByName(cfg.Workload)
	if !ok {
		return LoadResult{}, fmt.Errorf("server: unknown YCSB workload %q", cfg.Workload)
	}
	if cfg.Theta > 0 {
		wl.Theta = cfg.Theta
	}

	if cfg.Prefill {
		if err := prefillWire(cfg); err != nil {
			return LoadResult{}, fmt.Errorf("server: prefill: %w", err)
		}
	}

	var (
		latest  atomic.Uint64 // newest inserted key (workload D reads, inserts)
		total   atomic.Uint64
		errs    atomic.Uint64
		sent    atomic.Uint64
		firstMu sync.Mutex
		firstEr error
	)
	latest.Store(cfg.Range)
	perConn := cfg.Ops / uint64(cfg.Conns)
	if cfg.Ops > 0 && perConn == 0 {
		perConn = 1
	}
	// Dial every connection before starting the clock: connection setup is
	// not part of the measurement window, and a duration-mode run must not
	// spend its budget on dialing (tiny smoke durations would otherwise
	// measure zero ops on a slow machine).
	clients := make([]*Client, cfg.Conns)
	for ci := range clients {
		cl, err := dialLoad(cfg)
		if err != nil {
			for _, c := range clients[:ci] {
				c.Close()
			}
			return LoadResult{}, err
		}
		clients[ci] = cl
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	deadline := time.Time{}
	if cfg.Ops == 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	hists := make([]*bench.Histogram, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		hists[ci] = &bench.Histogram{}
		wg.Add(1)
		go func(ci int, h *bench.Histogram) {
			defer wg.Done()
			var ops, errors, issued uint64
			var err error
			if cfg.Rate > 0 {
				ops, errors, issued, err = loadConnOpen(cfg, wl, ci, clients[ci], perConn, deadline, &latest, h)
			} else {
				ops, errors, err = loadConn(cfg, wl, ci, clients[ci], perConn, deadline, &latest, h)
			}
			total.Add(ops)
			errs.Add(errors)
			sent.Add(issued)
			if err != nil {
				firstMu.Lock()
				if firstEr == nil {
					firstEr = err
				}
				firstMu.Unlock()
			}
		}(ci, hists[ci])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstEr != nil {
		return LoadResult{}, firstEr
	}
	lat := &bench.Histogram{}
	for _, h := range hists {
		lat.Merge(h)
	}
	res := LoadResult{
		Ops:       total.Load(),
		Errors:    errs.Load(),
		Elapsed:   elapsed,
		OpsPerSec: float64(total.Load()) / elapsed.Seconds(),
		Lat:       lat,
	}
	if cfg.Rate > 0 {
		res.Offered = float64(sent.Load()) / elapsed.Seconds()
	}
	return res, nil
}

// splitmix is the per-connection RNG (same generator as pmem.Thread.Rand).
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// dialLoad opens one load connection in the configured protocol.
func dialLoad(cfg LoadConfig) (*Client, error) {
	if cfg.Binary {
		return DialBin(cfg.Addr)
	}
	return Dial(cfg.Addr)
}

// opSender builds the per-connection workload closure: each call queues one
// random operation on cl. The reply kinds all fold into the same error
// accounting, so callers only track send timestamps.
func opSender(cfg LoadConfig, wl bench.Workload, ci int, latest *atomic.Uint64, cl *Client) func() error {
	rng := splitmix(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(ci+1)*0x2545f4914f6cdd1d)
	var z *bench.Zipf
	if wl.Theta > 0 {
		z = bench.NewZipf(cfg.Range, wl.Theta)
	}
	key := func() uint64 {
		r := rng.next()
		var k uint64
		if z != nil {
			k = z.Next(r)
		} else {
			k = r%cfg.Range + 1
		}
		if wl.ReadLatest {
			max := latest.Load()
			if k > max {
				k = max
			}
			k = max - k + 1
		}
		return k
	}
	var zscan *bench.Zipf
	if wl.ScanPct > 0 {
		maxLen := wl.MaxScanLen
		if maxLen <= 0 {
			maxLen = 100
		}
		zscan = bench.NewZipf(uint64(maxLen), 0.99)
	}
	return func() error {
		r := int(rng.next() % 100)
		switch {
		case r < wl.ReadPct:
			return cl.SendGet(key())
		case r < wl.ReadPct+wl.UpdatePct:
			return cl.SendPut(key(), rng.next())
		case r < wl.ReadPct+wl.UpdatePct+wl.InsertPct:
			return cl.SendInsert(latest.Add(1), rng.next())
		case r < wl.ReadPct+wl.UpdatePct+wl.InsertPct+wl.RMWPct+wl.AtomicPct:
			// RMW over the wire is the server-side conditional overwrite:
			// one round trip through the structure's Update critical section.
			return cl.SendUpdate(key(), rng.next())
		default:
			lo := key()
			want := int(zscan.Next(rng.next()))
			return cl.SendScan(lo, lo+4*uint64(want), want)
		}
	}
}

// loadConn runs one connection's closed loop over the pre-dialed cl
// (owned and closed by RunLoad).
func loadConn(cfg LoadConfig, wl bench.Workload, ci int, cl *Client, budget uint64,
	deadline time.Time, latest *atomic.Uint64, h *bench.Histogram) (ops, errors uint64, err error) {
	send := opSender(cfg, wl, ci, latest, cl)

	times := make([]time.Time, cfg.Pipeline) // FIFO ring of send timestamps
	head, tail, inflight := 0, 0, 0
	readOne := func() error {
		rep, err := cl.ReadReply()
		if err != nil {
			return err
		}
		h.Record(time.Since(times[head]))
		head = (head + 1) % len(times)
		inflight--
		ops++
		if rep.IsErr() {
			errors++
		}
		return nil
	}
	for {
		if budget > 0 && ops+uint64(inflight) >= budget {
			break
		}
		// The deadline only applies once something has been issued: every
		// connection contributes at least one op, so a smoke-length window
		// on a slow machine still measures a non-empty run.
		if budget == 0 && inflight > 0 && !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		times[tail] = time.Now()
		tail = (tail + 1) % len(times)
		if err := send(); err != nil {
			return ops, errors, err
		}
		inflight++
		if inflight == cfg.Pipeline {
			if err := cl.Flush(); err != nil {
				return ops, errors, err
			}
			if err := readOne(); err != nil {
				return ops, errors, err
			}
		}
	}
	if err := cl.Flush(); err != nil {
		return ops, errors, err
	}
	for inflight > 0 {
		if err := readOne(); err != nil {
			return ops, errors, err
		}
	}
	return ops, errors, nil
}

// loadConnOpen runs one connection's open-loop schedule: a sender paces
// requests on the arrival process and a receiver records, for every reply,
// the time since that request was *scheduled* to be sent. When the server
// (or the sender itself) falls behind, requests go out late in a catch-up
// burst but their latency still counts from the intended time — the
// coordinated-omission-free accounting the package comment describes.
// cl is pre-dialed and owned by RunLoad; the error path below may close
// it early to unblock the receiver (Close is idempotent).
func loadConnOpen(cfg LoadConfig, wl bench.Workload, ci int, cl *Client, budget uint64,
	deadline time.Time, latest *atomic.Uint64, h *bench.Histogram) (ops, errors, sent uint64, err error) {
	send := opSender(cfg, wl, ci, latest, cl)

	// Each connection runs its slice of the aggregate rate. The arrival
	// RNG is independent of the workload RNG so the schedule does not
	// depend on which ops are drawn.
	mean := float64(time.Second) * float64(cfg.Conns) / cfg.Rate
	arng := splitmix(uint64(cfg.Seed)*0x6c62272e07bb0142 + uint64(ci+1)*0x27d4eb2f165667c5)

	// intents carries intended send times to the receiver in send order
	// (replies are FIFO per connection). Its capacity bounds the backlog a
	// stalled server can accumulate inside the generator; at the default
	// rates it is minutes of schedule.
	intents := make(chan time.Time, 1<<16)
	var stop atomic.Bool
	var recvErr error
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for t := range intents {
			rep, e := cl.ReadReply()
			if e != nil {
				recvErr = e
				stop.Store(true)
				for range intents { // unblock the sender until it closes
				}
				return
			}
			h.Record(time.Since(t))
			ops++
			if rep.IsErr() {
				errors++
			}
		}
	}()

	intended := time.Now()
	for !stop.Load() {
		if budget > 0 && sent >= budget {
			break
		}
		step := mean
		if cfg.Poisson {
			// Exponential interarrival: -mean·ln(U), U uniform in (0, 1].
			u := float64(arng.next()>>11+1) / float64(1<<53)
			step = -mean * math.Log(u)
		}
		intended = intended.Add(time.Duration(step))
		if budget == 0 && !deadline.IsZero() && intended.After(deadline) {
			break
		}
		// Ahead of schedule: flush what is queued and sleep until the
		// intended instant. Behind schedule: send immediately (catch-up
		// burst), flushing every 64 requests to bound the buffered run.
		if wait := time.Until(intended); wait > 0 {
			if err = cl.Flush(); err != nil {
				break
			}
			time.Sleep(wait)
		} else if sent%64 == 0 {
			if err = cl.Flush(); err != nil {
				break
			}
		}
		intents <- intended
		if err = send(); err != nil {
			break
		}
		sent++
	}
	if err == nil {
		err = cl.Flush()
	}
	if err != nil {
		// The receiver may be blocked in ReadReply on a half-broken
		// connection; closing it unblocks the read (Close is idempotent).
		cl.Close()
	}
	close(intents)
	<-recvDone
	if err == nil {
		err = recvErr
	}
	return ops, errors, sent, err
}

// prefillWire inserts every other key of [1, Range] over the wire, the
// key-partitioned pipelined equivalent of bench.Prefill.
func prefillWire(cfg LoadConfig) error {
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Conns)
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(cfg.Addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			pending := 0
			for k := uint64(1 + 2*w); k <= cfg.Range; k += 2 * uint64(cfg.Conns) {
				if err := cl.SendInsert(k, k); err != nil {
					errCh <- err
					return
				}
				if pending++; pending == 64 {
					if err := drain(cl, pending); err != nil {
						errCh <- err
						return
					}
					pending = 0
				}
			}
			if err := drain(cl, pending); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

func drain(cl *Client, n int) error {
	if err := cl.Flush(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := cl.ReadReply(); err != nil {
			return err
		}
	}
	return nil
}

// Bench runs a self-contained serve-and-load cycle — a 4-shard
// zero-profile hash engine behind a Unix socket, four pipelining
// connections of YCSB-A — and returns the outcome as a bench.Result, so
// nvbench's JSON baseline can carry a server row next to the in-process
// panels. The wire stack (sockets, parsing, batching) is the measured
// object; the zero profile keeps simulated memory latency out of it.
//
// Each cycle is two passes: a closed-loop pass that measures capacity
// (throughput, flush/fence rates), then an open-loop Poisson pass at 70% of
// that capacity whose histogram supplies the result's latency percentiles —
// tails quoted at a fixed offered rate, free of coordinated omission.
func Bench(dur time.Duration) (bench.Result, error) {
	return benchStore(dur, "", false)
}

// BenchFile is Bench against the durable file backend: the same wire
// workload, but every commit fence journals into a WAL on disk (a
// throwaway directory, no fsync). The delta against Bench's row is the
// serving-path cost of real durability.
func BenchFile(dur time.Duration) (bench.Result, error) {
	dataDir, err := os.MkdirTemp("", "nvserver-bench-data")
	if err != nil {
		return bench.Result{}, err
	}
	defer os.RemoveAll(dataDir)
	return benchStore(dur, dataDir, false)
}

// BenchBin is Bench over the binary frame protocol: the same store, socket
// and workload, decoded from fixed-layout frames on the zero-allocation
// path. The delta against Bench's row is what text parsing and reply
// formatting cost the serving path.
func BenchBin(dur time.Duration) (bench.Result, error) {
	return benchStore(dur, "", true)
}

// openLoopFraction sets the offered rate of the latency pass relative to
// the measured closed-loop capacity. At 1.0 the queue never drains and the
// percentiles measure the backlog, not the server; 0.7 is busy enough to
// exercise batching while staying inside the stable region.
const openLoopFraction = 0.7

func benchStore(dur time.Duration, dataDir string, binary bool) (bench.Result, error) {
	const conns, shards = 4, 4
	var keyRange uint64 = 1 << 15
	cfg := bench.Config{
		Kind: core.KindHash, Policy: "nvtraverse", Profile: pmem.ProfileZero,
		Threads: conns, Range: keyRange, Workload: "A", Shards: shards,
	}
	// Connection headroom: prefill, the closed-loop pass and the open-loop
	// pass each dial `conns` connections back to back, and the server
	// releases a closed connection's slot asynchronously — without slack a
	// new pass can race the previous pass's teardown into a refusal.
	st, err := store.Open(store.Config{
		Kind: cfg.Kind, Policy: persist.NVTraverse{}, Profile: cfg.Profile,
		Shards: shards, SizeHint: int(keyRange), MaxSessions: 3*conns + shards + 8,
		Dir: dataDir,
	})
	if err != nil {
		return bench.Result{}, err
	}
	defer st.Close()
	dir, err := os.MkdirTemp("", "nvserver-bench")
	if err != nil {
		return bench.Result{}, err
	}
	defer os.RemoveAll(dir)
	addr := "unix:" + filepath.Join(dir, "nv.sock")
	srv := New(st, Config{MaxConns: 3 * conns})
	ln, err := Listen(addr)
	if err != nil {
		return bench.Result{}, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()

	if err := prefillWire(LoadConfig{Addr: addr, Conns: conns, Range: keyRange}); err != nil {
		return bench.Result{}, err
	}
	st.ResetStats()
	res, err := RunLoad(LoadConfig{
		Addr: addr, Conns: conns, Pipeline: 16,
		Duration: bench.EffectiveDuration(dur),
		Workload: cfg.Workload, Range: keyRange,
		Binary: binary,
	})
	if err != nil {
		return bench.Result{}, err
	}
	if res.Errors > 0 {
		return bench.Result{}, fmt.Errorf("server: bench run saw %d protocol errors", res.Errors)
	}
	stats := st.Stats()
	out := bench.Result{
		Config:  cfg,
		Ops:     res.Ops,
		Mops:    res.OpsPerSec / 1e6,
		Elapsed: res.Elapsed,
		Lat:     res.Lat,
	}
	if res.Ops > 0 {
		out.FlushPerOp = float64(stats.Flushes) / float64(res.Ops)
		out.ElidePerOp = float64(stats.FlushesElided) / float64(res.Ops)
		out.FencePerOp = float64(stats.Fences) / float64(res.Ops)
	}

	// Latency pass: open-loop Poisson arrivals at a fixed fraction of the
	// capacity the closed-loop pass just measured. Its percentiles replace
	// the closed-loop ones in the row; throughput keeps the capacity
	// numbers. The pass is budgeted in ops rather than wall clock (budget ≈
	// rate × duration) so smoke-length durations still produce a histogram:
	// a duration window can expire before a slow machine sends anything, an
	// op budget cannot.
	rate := res.OpsPerSec * openLoopFraction
	if rate < 1000 {
		rate = 1000
	}
	budget := uint64(rate * bench.EffectiveDuration(dur).Seconds())
	if budget < 16*conns {
		budget = 16 * conns
	}
	open, err := RunLoad(LoadConfig{
		Addr: addr, Conns: conns, Pipeline: 16,
		Ops:      budget,
		Workload: cfg.Workload, Range: keyRange,
		Binary: binary,
		Rate:   rate, Poisson: true,
	})
	if err != nil {
		return bench.Result{}, err
	}
	if open.Errors > 0 {
		return bench.Result{}, fmt.Errorf("server: open-loop pass saw %d protocol errors", open.Errors)
	}
	out.Lat = open.Lat
	out.Offered = open.Offered
	return out, nil
}

// The embedded load generator: closed-loop pipelining clients driving the
// wire protocol with the YCSB key and operation distributions of
// internal/bench, measuring throughput and an HDR-style latency histogram
// per request. It exists so the server can be exercised and measured with
// the same workload vocabulary — and land in the same BenchDoc JSON schema
// — as the in-process harness.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/store"
)

// LoadConfig configures RunLoad.
type LoadConfig struct {
	// Addr is the server address ("unix:/path", "tcp:host:port", "host:port").
	Addr string
	// Conns is the number of concurrent connections (default 4).
	Conns int
	// Pipeline is the number of requests each connection keeps in flight
	// (default 16; 1 = strict request/response).
	Pipeline int
	// Ops is the total operation budget across connections; 0 runs for
	// Duration instead.
	Ops uint64
	// Duration bounds the run when Ops is 0 (default 1s).
	Duration time.Duration
	// Workload is a YCSB workload letter (see bench.Workloads; default A).
	Workload string
	// Range is the key range (default 1<<16).
	Range uint64
	// Theta overrides the workload's Zipf skew when > 0.
	Theta float64
	// Prefill inserts every other key of [1, Range] before measuring.
	Prefill bool
	// Seed perturbs the per-connection RNGs.
	Seed int64
}

// LoadResult is one load run's outcome.
type LoadResult struct {
	Ops       uint64
	Errors    uint64
	Elapsed   time.Duration
	OpsPerSec float64
	Lat       *bench.Histogram
}

// String renders the result for humans.
func (r LoadResult) String() string {
	return fmt.Sprintf("%d ops in %v  %.0f ops/s  %d errors\n%s",
		r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec, r.Errors, r.Lat.Summary())
}

// RunLoad drives the server at cfg.Addr. Every connection runs the same
// closed-loop: keep Pipeline requests outstanding, read replies in order,
// and record client-perceived latency (send enqueue to reply) per request.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 16
	}
	if cfg.Range == 0 {
		cfg.Range = 1 << 16
	}
	if cfg.Workload == "" {
		cfg.Workload = "A"
	}
	if cfg.Ops == 0 && cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	wl, ok := bench.WorkloadByName(cfg.Workload)
	if !ok {
		return LoadResult{}, fmt.Errorf("server: unknown YCSB workload %q", cfg.Workload)
	}
	if cfg.Theta > 0 {
		wl.Theta = cfg.Theta
	}

	if cfg.Prefill {
		if err := prefillWire(cfg); err != nil {
			return LoadResult{}, fmt.Errorf("server: prefill: %w", err)
		}
	}

	var (
		latest  atomic.Uint64 // newest inserted key (workload D reads, inserts)
		total   atomic.Uint64
		errs    atomic.Uint64
		firstMu sync.Mutex
		firstEr error
	)
	latest.Store(cfg.Range)
	perConn := cfg.Ops / uint64(cfg.Conns)
	if cfg.Ops > 0 && perConn == 0 {
		perConn = 1
	}
	deadline := time.Time{}
	if cfg.Ops == 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	hists := make([]*bench.Histogram, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < cfg.Conns; ci++ {
		hists[ci] = &bench.Histogram{}
		wg.Add(1)
		go func(ci int, h *bench.Histogram) {
			defer wg.Done()
			ops, errors, err := loadConn(cfg, wl, ci, perConn, deadline, &latest, h)
			total.Add(ops)
			errs.Add(errors)
			if err != nil {
				firstMu.Lock()
				if firstEr == nil {
					firstEr = err
				}
				firstMu.Unlock()
			}
		}(ci, hists[ci])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstEr != nil {
		return LoadResult{}, firstEr
	}
	lat := &bench.Histogram{}
	for _, h := range hists {
		lat.Merge(h)
	}
	return LoadResult{
		Ops:       total.Load(),
		Errors:    errs.Load(),
		Elapsed:   elapsed,
		OpsPerSec: float64(total.Load()) / elapsed.Seconds(),
		Lat:       lat,
	}, nil
}

// splitmix is the per-connection RNG (same generator as pmem.Thread.Rand).
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// loadConn runs one connection's closed loop.
func loadConn(cfg LoadConfig, wl bench.Workload, ci int, budget uint64,
	deadline time.Time, latest *atomic.Uint64, h *bench.Histogram) (ops, errors uint64, err error) {
	cl, err := Dial(cfg.Addr)
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()

	rng := splitmix(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(ci+1)*0x2545f4914f6cdd1d)
	var z *bench.Zipf
	if wl.Theta > 0 {
		z = bench.NewZipf(cfg.Range, wl.Theta)
	}
	key := func() uint64 {
		r := rng.next()
		var k uint64
		if z != nil {
			k = z.Next(r)
		} else {
			k = r%cfg.Range + 1
		}
		if wl.ReadLatest {
			max := latest.Load()
			if k > max {
				k = max
			}
			k = max - k + 1
		}
		return k
	}
	var zscan *bench.Zipf
	if wl.ScanPct > 0 {
		maxLen := wl.MaxScanLen
		if maxLen <= 0 {
			maxLen = 100
		}
		zscan = bench.NewZipf(uint64(maxLen), 0.99)
	}

	// send issues one workload operation; the reply kinds all fold into the
	// same error accounting, so the ring only tracks send timestamps.
	send := func() error {
		r := int(rng.next() % 100)
		switch {
		case r < wl.ReadPct:
			return cl.SendGet(key())
		case r < wl.ReadPct+wl.UpdatePct:
			return cl.SendPut(key(), rng.next())
		case r < wl.ReadPct+wl.UpdatePct+wl.InsertPct:
			return cl.SendInsert(latest.Add(1), rng.next())
		case r < wl.ReadPct+wl.UpdatePct+wl.InsertPct+wl.RMWPct+wl.AtomicPct:
			// RMW over the wire is the server-side conditional overwrite:
			// one round trip through the structure's Update critical section.
			return cl.SendUpdate(key(), rng.next())
		default:
			lo := key()
			want := int(zscan.Next(rng.next()))
			return cl.SendScan(lo, lo+4*uint64(want), want)
		}
	}

	times := make([]time.Time, cfg.Pipeline) // FIFO ring of send timestamps
	head, tail, inflight := 0, 0, 0
	readOne := func() error {
		rep, err := cl.ReadReply()
		if err != nil {
			return err
		}
		h.Record(time.Since(times[head]))
		head = (head + 1) % len(times)
		inflight--
		ops++
		if rep.IsErr() {
			errors++
		}
		return nil
	}
	for {
		if budget > 0 && ops+uint64(inflight) >= budget {
			break
		}
		if budget == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		times[tail] = time.Now()
		tail = (tail + 1) % len(times)
		if err := send(); err != nil {
			return ops, errors, err
		}
		inflight++
		if inflight == cfg.Pipeline {
			if err := cl.Flush(); err != nil {
				return ops, errors, err
			}
			if err := readOne(); err != nil {
				return ops, errors, err
			}
		}
	}
	if err := cl.Flush(); err != nil {
		return ops, errors, err
	}
	for inflight > 0 {
		if err := readOne(); err != nil {
			return ops, errors, err
		}
	}
	return ops, errors, nil
}

// prefillWire inserts every other key of [1, Range] over the wire, the
// key-partitioned pipelined equivalent of bench.Prefill.
func prefillWire(cfg LoadConfig) error {
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Conns)
	for w := 0; w < cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(cfg.Addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			pending := 0
			for k := uint64(1 + 2*w); k <= cfg.Range; k += 2 * uint64(cfg.Conns) {
				if err := cl.SendInsert(k, k); err != nil {
					errCh <- err
					return
				}
				if pending++; pending == 64 {
					if err := drain(cl, pending); err != nil {
						errCh <- err
						return
					}
					pending = 0
				}
			}
			if err := drain(cl, pending); err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

func drain(cl *Client, n int) error {
	if err := cl.Flush(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := cl.ReadReply(); err != nil {
			return err
		}
	}
	return nil
}

// Bench runs a self-contained serve-and-load cycle — a 4-shard
// zero-profile hash engine behind a Unix socket, four pipelining
// connections of YCSB-A — and returns the outcome as a bench.Result, so
// nvbench's JSON baseline can carry a server row next to the in-process
// panels. The wire stack (sockets, parsing, batching) is the measured
// object; the zero profile keeps simulated memory latency out of it.
func Bench(dur time.Duration) (bench.Result, error) {
	return benchStore(dur, "")
}

// BenchFile is Bench against the durable file backend: the same wire
// workload, but every commit fence journals into a WAL on disk (a
// throwaway directory, no fsync). The delta against Bench's row is the
// serving-path cost of real durability.
func BenchFile(dur time.Duration) (bench.Result, error) {
	dataDir, err := os.MkdirTemp("", "nvserver-bench-data")
	if err != nil {
		return bench.Result{}, err
	}
	defer os.RemoveAll(dataDir)
	return benchStore(dur, dataDir)
}

func benchStore(dur time.Duration, dataDir string) (bench.Result, error) {
	const conns, shards = 4, 4
	var keyRange uint64 = 1 << 15
	cfg := bench.Config{
		Kind: core.KindHash, Policy: "nvtraverse", Profile: pmem.ProfileZero,
		Threads: conns, Range: keyRange, Workload: "A", Shards: shards,
	}
	st, err := store.Open(store.Config{
		Kind: cfg.Kind, Policy: persist.NVTraverse{}, Profile: cfg.Profile,
		Shards: shards, SizeHint: int(keyRange), MaxSessions: conns + 8,
		Dir: dataDir,
	})
	if err != nil {
		return bench.Result{}, err
	}
	defer st.Close()
	dir, err := os.MkdirTemp("", "nvserver-bench")
	if err != nil {
		return bench.Result{}, err
	}
	defer os.RemoveAll(dir)
	addr := "unix:" + filepath.Join(dir, "nv.sock")
	srv := New(st, Config{MaxConns: conns + 2})
	ln, err := Listen(addr)
	if err != nil {
		return bench.Result{}, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
	}()

	if err := prefillWire(LoadConfig{Addr: addr, Conns: conns, Range: keyRange}); err != nil {
		return bench.Result{}, err
	}
	st.ResetStats()
	res, err := RunLoad(LoadConfig{
		Addr: addr, Conns: conns, Pipeline: 16,
		Duration: bench.EffectiveDuration(dur),
		Workload: cfg.Workload, Range: keyRange,
	})
	if err != nil {
		return bench.Result{}, err
	}
	if res.Errors > 0 {
		return bench.Result{}, fmt.Errorf("server: bench run saw %d protocol errors", res.Errors)
	}
	stats := st.Stats()
	out := bench.Result{
		Config:  cfg,
		Ops:     res.Ops,
		Mops:    res.OpsPerSec / 1e6,
		Elapsed: res.Elapsed,
		Lat:     res.Lat,
	}
	if res.Ops > 0 {
		out.FlushPerOp = float64(stats.Flushes) / float64(res.Ops)
		out.ElidePerOp = float64(stats.FlushesElided) / float64(res.Ops)
		out.FencePerOp = float64(stats.Fences) / float64(res.Ops)
	}
	return out, nil
}
